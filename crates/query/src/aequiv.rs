//! `A`-containment and `A`-equivalence (Lemma 3.2).
//!
//! `Q1 ⊑_A Q2` holds when `Q1(D) ⊆ Q2(D)` for every instance `D |= A`; it is
//! strictly weaker than classical containment.  The decision procedure uses
//! element queries: `Q1 ≡_A ⋃ Q_e` over its element queries, each of which
//! has an `A`-satisfying tableau, and for such a query `Q_e ⊑_A Q2` coincides
//! with classical containment `Q_e ⊆ Q2` (the canonical instance of `Q_e`
//! itself satisfies `A`).  The problem is Πᵖ₂-complete, so everything is
//! budgeted.
//!
//! Every containment test here runs on the planned slot engine of
//! [`crate::hom`]: the [`ContainmentChecker`] carries a
//! [`crate::planner::PlannerConfig`], so `A`-containment over cyclic
//! element queries benefits from the generic-join strategy.  The one-shot
//! functions below use the default (auto) planner; pass a checker built
//! with [`ContainmentChecker::with_planner`] to the `*_with` variants to
//! override it for a whole decision procedure.

use crate::budget::Budget;
use crate::containment::ContainmentChecker;
use crate::cq::ConjunctiveQuery;
use crate::element::element_queries;
use crate::ucq::UnionQuery;
use crate::Result;
use bqr_data::{AccessSchema, DatabaseSchema};

/// Decide `q1 ⊑_A q2` for conjunctive queries.
pub fn cq_a_contained_in(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    access: &AccessSchema,
    schema: &DatabaseSchema,
    budget: &Budget,
) -> Result<bool> {
    ucq_a_contained_in(
        &UnionQuery::single(q1.clone()),
        &UnionQuery::single(q2.clone()),
        access,
        schema,
        budget,
    )
}

/// Decide `u1 ⊑_A u2` for unions of conjunctive queries.
pub fn ucq_a_contained_in(
    u1: &UnionQuery,
    u2: &UnionQuery,
    access: &AccessSchema,
    schema: &DatabaseSchema,
    budget: &Budget,
) -> Result<bool> {
    let checker = ContainmentChecker::new(schema);
    ucq_a_contained_in_with(&checker, u1, u2, access, budget)
}

/// [`ucq_a_contained_in`] against a caller-provided [`ContainmentChecker`],
/// so that a sequence of `A`-containment tests (the exact VBRP search checks
/// hundreds of candidate plans against the same query) shares canonical
/// instances and relation indexes.
pub fn ucq_a_contained_in_with(
    checker: &ContainmentChecker<'_>,
    u1: &UnionQuery,
    u2: &UnionQuery,
    access: &AccessSchema,
    budget: &Budget,
) -> Result<bool> {
    for d in u1.disjuncts() {
        for qe in element_queries(d, access, checker.schema(), budget)? {
            if !checker.cq_contained_in_ucq(&qe, u2)? {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Decide `q1 ≡_A q2` for conjunctive queries.
pub fn cq_a_equivalent(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    access: &AccessSchema,
    schema: &DatabaseSchema,
    budget: &Budget,
) -> Result<bool> {
    ucq_a_equivalent(
        &UnionQuery::single(q1.clone()),
        &UnionQuery::single(q2.clone()),
        access,
        schema,
        budget,
    )
}

/// Decide `u1 ≡_A u2` for unions of conjunctive queries.
pub fn ucq_a_equivalent(
    u1: &UnionQuery,
    u2: &UnionQuery,
    access: &AccessSchema,
    schema: &DatabaseSchema,
    budget: &Budget,
) -> Result<bool> {
    let checker = ContainmentChecker::new(schema);
    ucq_a_equivalent_with(&checker, u1, u2, access, budget)
}

/// [`ucq_a_equivalent`] against a caller-provided [`ContainmentChecker`].
pub fn ucq_a_equivalent_with(
    checker: &ContainmentChecker<'_>,
    u1: &UnionQuery,
    u2: &UnionQuery,
    access: &AccessSchema,
    budget: &Budget,
) -> Result<bool> {
    Ok(ucq_a_contained_in_with(checker, u1, u2, access, budget)?
        && ucq_a_contained_in_with(checker, u2, u1, access, budget)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, Term};
    use crate::containment::cq_contained_in;
    use crate::testutil::{movie_access, movie_schema, q0, v1, va};
    use crate::views::ViewSet;
    use bqr_data::{AccessConstraint, AccessSchema};

    fn simple_schema() -> DatabaseSchema {
        DatabaseSchema::with_relations(&[("r", &["a", "b"]), ("s", &["a", "b"])]).unwrap()
    }

    #[test]
    fn classical_containment_implies_a_containment() {
        let schema = simple_schema();
        let access =
            AccessSchema::new(vec![AccessConstraint::new("r", &["a"], &["b"], 2).unwrap()]);
        let specific = ConjunctiveQuery::new(
            vec![Term::var("x")],
            vec![Atom::new("r", vec![Term::var("x"), Term::cnst(1)])],
        )
        .unwrap();
        let general =
            ConjunctiveQuery::new(vec![Term::var("x")], vec![va("r", &["x", "y"])]).unwrap();
        assert!(
            cq_a_contained_in(&specific, &general, &access, &schema, &Budget::generous()).unwrap()
        );
        assert!(
            !cq_a_contained_in(&general, &specific, &access, &schema, &Budget::generous()).unwrap()
        );
        assert!(
            !cq_a_equivalent(&general, &specific, &access, &schema, &Budget::generous()).unwrap()
        );
        assert!(
            cq_a_equivalent(&general, &general, &access, &schema, &Budget::generous()).unwrap()
        );
    }

    #[test]
    fn a_containment_strictly_weaker_than_containment() {
        // Under r(a → b, 1): Q1() :- r(x, y1), r(x, y2), s(y1, y2) is
        // A-contained in Q2() :- r(x, y), s(y, y) (the FD forces y1 = y2),
        // but not classically contained.
        let schema = simple_schema();
        let access = AccessSchema::new(vec![AccessConstraint::fd("r", &["a"], &["b"]).unwrap()]);
        let q1 = ConjunctiveQuery::boolean(vec![
            va("r", &["x", "y1"]),
            va("r", &["x", "y2"]),
            va("s", &["y1", "y2"]),
        ])
        .unwrap();
        let q2 =
            ConjunctiveQuery::boolean(vec![va("r", &["x", "y"]), va("s", &["y", "y"])]).unwrap();
        assert!(
            !cq_contained_in(&q1, &q2, &schema).unwrap(),
            "not classically contained"
        );
        assert!(
            cq_a_contained_in(&q1, &q2, &access, &schema, &Budget::generous()).unwrap(),
            "but A-contained thanks to the FD"
        );
        // The converse direction holds classically (map q1 into q2's canonical
        // instance), hence also under A.
        assert!(cq_a_contained_in(&q2, &q1, &access, &schema, &Budget::generous()).unwrap());
        assert!(cq_a_equivalent(&q1, &q2, &access, &schema, &Budget::generous()).unwrap());
    }

    #[test]
    fn unsatisfiable_query_is_a_contained_in_everything() {
        let schema = simple_schema();
        let access = AccessSchema::new(vec![AccessConstraint::fd("r", &["a"], &["b"]).unwrap()]);
        let unsat = ConjunctiveQuery::boolean(vec![
            Atom::new("r", vec![Term::var("x"), Term::cnst(1)]),
            Atom::new("r", vec![Term::var("x"), Term::cnst(2)]),
        ])
        .unwrap();
        let anything = ConjunctiveQuery::boolean(vec![va("s", &["u", "v"])]).unwrap();
        assert!(
            cq_a_contained_in(&unsat, &anything, &access, &schema, &Budget::generous()).unwrap()
        );
        assert!(
            !cq_a_contained_in(&anything, &unsat, &access, &schema, &Budget::generous()).unwrap()
        );
    }

    #[test]
    fn example_2_3_rewriting_is_a_equivalent_to_q0() {
        // The unfolded rewriting Qξ (using V1) is A0-equivalent to Q0.
        let schema = movie_schema();
        let access = movie_access(100);
        let mut views = ViewSet::empty();
        views.add_cq("V1", v1()).unwrap();
        let q_xi = ConjunctiveQuery::new(
            vec![Term::var("mid")],
            vec![
                Atom::new(
                    "movie",
                    vec![
                        Term::var("mid"),
                        Term::var("ym"),
                        Term::cnst("Universal"),
                        Term::cnst("2014"),
                    ],
                ),
                Atom::new("V1", vec![Term::var("mid")]),
                Atom::new("rating", vec![Term::var("mid"), Term::cnst(5)]),
            ],
        )
        .unwrap();
        let unfolded = views.unfold_cq(&q_xi).unwrap();
        assert!(cq_a_equivalent(&unfolded, &q0(), &access, &schema, &Budget::generous()).unwrap());
    }

    #[test]
    fn ucq_a_containment_respects_disjuncts() {
        let schema = simple_schema();
        let access =
            AccessSchema::new(vec![AccessConstraint::new("r", &["a"], &["b"], 2).unwrap()]);
        let d1 = ConjunctiveQuery::new(
            vec![Term::var("x")],
            vec![Atom::new("r", vec![Term::var("x"), Term::cnst(1)])],
        )
        .unwrap();
        let d2 = ConjunctiveQuery::new(
            vec![Term::var("x")],
            vec![Atom::new("s", vec![Term::var("x"), Term::cnst(1)])],
        )
        .unwrap();
        let both = UnionQuery::new(vec![d1.clone(), d2.clone()]).unwrap();
        let just_r = UnionQuery::single(d1);
        assert!(ucq_a_contained_in(&just_r, &both, &access, &schema, &Budget::generous()).unwrap());
        assert!(
            !ucq_a_contained_in(&both, &just_r, &access, &schema, &Budget::generous()).unwrap()
        );
        assert!(ucq_a_equivalent(&both, &both, &access, &schema, &Budget::generous()).unwrap());
        assert!(!ucq_a_equivalent(&both, &just_r, &access, &schema, &Budget::generous()).unwrap());
    }
}
