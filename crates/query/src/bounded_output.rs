//! The bounded-output problem `BOP` (Theorem 3.4).
//!
//! A query `V` has *bounded output* under an access schema `A` when there is
//! a constant `N` with `|V(D)| ≤ N` for every instance `D |= A`.  Bounded
//! output of views is the crux of plan conformance: a `fetch` may only be
//! driven by an input whose size is independent of `|D|`.
//!
//! The decision procedure follows Lemma 3.7: a CQ (UCQ, ∃FO+) has bounded
//! output iff every element query has all of its non-constant head variables
//! covered.  Since every element query refines one of the *minimal* element
//! queries enumerated by [`crate::element`] and refinement preserves
//! coverage, it suffices to check the minimal ones.  The problem is
//! coNP-complete (and undecidable for FO), so all entry points are budgeted.

use crate::budget::Budget;
use crate::cover::{output_bound, satisfying_cq_has_bounded_output};
use crate::cq::ConjunctiveQuery;
use crate::element::element_queries;
use crate::error::QueryError;
use crate::fo::FoQuery;
use crate::ucq::UnionQuery;
use crate::Result;
use bqr_data::{AccessSchema, DatabaseSchema};

/// Outcome of a bounded-output analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputBound {
    /// The output size is bounded by the given constant on every `D |= A`.
    Bounded(usize),
    /// The output size grows with the instance.
    Unbounded,
}

impl OutputBound {
    /// Is the output bounded?
    pub fn is_bounded(&self) -> bool {
        matches!(self, OutputBound::Bounded(_))
    }

    /// The bound, if any.
    pub fn bound(&self) -> Option<usize> {
        match self {
            OutputBound::Bounded(n) => Some(*n),
            OutputBound::Unbounded => None,
        }
    }
}

/// Decide `BOP(CQ)`: does `cq` have bounded output under `access`?
pub fn cq_output(
    cq: &ConjunctiveQuery,
    access: &AccessSchema,
    schema: &DatabaseSchema,
    budget: &Budget,
) -> Result<OutputBound> {
    let elements = element_queries(cq, access, schema, budget)?;
    if elements.is_empty() {
        // Unsatisfiable under A: the output is empty, hence bounded by 0.
        return Ok(OutputBound::Bounded(0));
    }
    let mut total = 0usize;
    for qe in &elements {
        if !satisfying_cq_has_bounded_output(qe, access, schema)? {
            return Ok(OutputBound::Unbounded);
        }
        total = total.saturating_add(
            output_bound(qe, access, schema)?.expect("bounded element query has a numeric bound"),
        );
    }
    Ok(OutputBound::Bounded(total))
}

/// Decide `BOP(UCQ)`.
pub fn ucq_output(
    ucq: &UnionQuery,
    access: &AccessSchema,
    schema: &DatabaseSchema,
    budget: &Budget,
) -> Result<OutputBound> {
    let mut total = 0usize;
    for d in ucq.disjuncts() {
        match cq_output(d, access, schema, budget)? {
            OutputBound::Unbounded => return Ok(OutputBound::Unbounded),
            OutputBound::Bounded(n) => total = total.saturating_add(n),
        }
    }
    Ok(OutputBound::Bounded(total))
}

/// Decide `BOP(∃FO+)` by expanding into a UCQ first.  Queries outside `∃FO+`
/// are rejected: `BOP(FO)` is undecidable (Theorem 3.4(2)), and the
/// *effective syntax* of size-bounded queries in `bqr-core` is the way to
/// handle FO views.
pub fn fo_output(
    query: &FoQuery,
    access: &AccessSchema,
    schema: &DatabaseSchema,
    budget: &Budget,
) -> Result<OutputBound> {
    if !query.body().is_positive() {
        return Err(QueryError::UnsupportedFragment(
            "BOP is undecidable for FO; use the size-bounded effective syntax instead".to_string(),
        ));
    }
    match query.to_ucq(budget)? {
        None => Ok(OutputBound::Bounded(0)),
        Some(ucq) => ucq_output(&ucq, access, schema, budget),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, Term};
    use crate::fo::Fo;
    use crate::testutil::{movie_access, movie_schema, v1, va};
    use bqr_data::{AccessConstraint, AccessSchema};

    #[test]
    fn v1_is_unbounded_under_a0() {
        // V1 collects movies liked by NASA folks; no constraint bounds it.
        let out = cq_output(
            &v1(),
            &movie_access(100),
            &movie_schema(),
            &Budget::generous(),
        )
        .unwrap();
        assert_eq!(out, OutputBound::Unbounded);
        assert!(!out.is_bounded());
        assert_eq!(out.bound(), None);
    }

    #[test]
    fn v2_nasa_employees_unbounded_but_movies_by_studio_bounded() {
        // V2(pid) :- person(pid, n, "NASA") is unbounded (Example 3.3(a)).
        let v2 = ConjunctiveQuery::new(
            vec![Term::var("pid")],
            vec![Atom::new(
                "person",
                vec![Term::var("pid"), Term::var("n"), Term::cnst("NASA")],
            )],
        )
        .unwrap();
        let out = cq_output(
            &v2,
            &movie_access(100),
            &movie_schema(),
            &Budget::generous(),
        )
        .unwrap();
        assert_eq!(out, OutputBound::Unbounded);

        // Movies of a fixed studio/year are bounded by N0 = 100.
        let q = ConjunctiveQuery::new(
            vec![Term::var("m")],
            vec![Atom::new(
                "movie",
                vec![
                    Term::var("m"),
                    Term::var("n"),
                    Term::cnst("Universal"),
                    Term::cnst("2014"),
                ],
            )],
        )
        .unwrap();
        let out = cq_output(&q, &movie_access(100), &movie_schema(), &Budget::generous()).unwrap();
        assert_eq!(out, OutputBound::Bounded(100));
    }

    #[test]
    fn unsatisfiable_query_is_bounded_by_zero() {
        let schema = DatabaseSchema::with_relations(&[("r", &["a", "b"])]).unwrap();
        let access = AccessSchema::new(vec![AccessConstraint::fd("r", &["a"], &["b"]).unwrap()]);
        let q = ConjunctiveQuery::boolean(vec![
            Atom::new("r", vec![Term::var("k"), Term::cnst(1)]),
            Atom::new("r", vec![Term::var("k"), Term::cnst(2)]),
        ])
        .unwrap();
        assert_eq!(
            cq_output(&q, &access, &schema, &Budget::generous()).unwrap(),
            OutputBound::Bounded(0)
        );
    }

    #[test]
    fn element_queries_can_rescue_boundedness() {
        // Q(x) :- r(k, x), r(k, 1), r(k, 2) under r(a → b, 2): every minimal
        // element query pins x to 1 or 2, so the output is bounded even though
        // cov(Q, A) alone would not cover x (k is not bounded).
        let schema = DatabaseSchema::with_relations(&[("r", &["a", "b"])]).unwrap();
        let access =
            AccessSchema::new(vec![AccessConstraint::new("r", &["a"], &["b"], 2).unwrap()]);
        let q = ConjunctiveQuery::new(
            vec![Term::var("x")],
            vec![
                va("r", &["k", "x"]),
                Atom::new("r", vec![Term::var("k"), Term::cnst(1)]),
                Atom::new("r", vec![Term::var("k"), Term::cnst(2)]),
            ],
        )
        .unwrap();
        let out = cq_output(&q, &access, &schema, &Budget::generous()).unwrap();
        assert!(out.is_bounded(), "{out:?}");
    }

    #[test]
    fn ucq_bounded_iff_every_disjunct_bounded() {
        let access = movie_access(10);
        let bounded = ConjunctiveQuery::new(
            vec![Term::var("m")],
            vec![Atom::new(
                "movie",
                vec![
                    Term::var("m"),
                    Term::var("n"),
                    Term::cnst("U"),
                    Term::cnst("2014"),
                ],
            )],
        )
        .unwrap();
        let unbounded =
            ConjunctiveQuery::new(vec![Term::var("p")], vec![va("person", &["p", "n", "a"])])
                .unwrap();
        let u1 = UnionQuery::new(vec![bounded.clone(), bounded.clone()]).unwrap();
        assert_eq!(
            ucq_output(&u1, &access, &movie_schema(), &Budget::generous()).unwrap(),
            OutputBound::Bounded(20)
        );
        let u2 = UnionQuery::new(vec![bounded, unbounded]).unwrap();
        assert_eq!(
            ucq_output(&u2, &access, &movie_schema(), &Budget::generous()).unwrap(),
            OutputBound::Unbounded
        );
    }

    #[test]
    fn fo_positive_goes_through_ucq_expansion() {
        let access = movie_access(10);
        // ∃n (movie(m, n, "U", "2014") ∨ movie(m, n, "WB", "2014"))
        let body = Fo::exists(
            vec!["n".into()],
            Fo::or(
                Fo::Atom(Atom::new(
                    "movie",
                    vec![
                        Term::var("m"),
                        Term::var("n"),
                        Term::cnst("U"),
                        Term::cnst("2014"),
                    ],
                )),
                Fo::Atom(Atom::new(
                    "movie",
                    vec![
                        Term::var("m"),
                        Term::var("n"),
                        Term::cnst("WB"),
                        Term::cnst("2014"),
                    ],
                )),
            ),
        );
        let q = FoQuery::new(vec![Term::var("m")], body).unwrap();
        assert_eq!(
            fo_output(&q, &access, &movie_schema(), &Budget::generous()).unwrap(),
            OutputBound::Bounded(20)
        );
    }

    #[test]
    fn fo_with_negation_is_rejected() {
        let access = movie_access(10);
        let q = FoQuery::boolean(Fo::not(Fo::Atom(va("rating", &["m", "r"]))));
        assert!(matches!(
            fo_output(&q, &access, &movie_schema(), &Budget::generous()),
            Err(QueryError::UnsupportedFragment(_))
        ));
    }
}
