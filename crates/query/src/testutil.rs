//! Shared fixtures for unit tests: the schema, access schema, query and view
//! of Example 1.1, plus small helpers.  Compiled only under `cfg(test)`.

use crate::atom::{Atom, Term};
use crate::cq::ConjunctiveQuery;
use bqr_data::{AccessConstraint, AccessSchema, Database, DatabaseSchema};

/// The movie schema `R_0` of Example 1.1.
pub fn movie_schema() -> DatabaseSchema {
    DatabaseSchema::with_relations(&[
        ("person", &["pid", "name", "affiliation"]),
        ("movie", &["mid", "mname", "studio", "release"]),
        ("rating", &["mid", "rank"]),
        ("like", &["pid", "id", "type"]),
    ])
    .expect("movie schema is well formed")
}

/// The access schema `A_0` of Example 1.1 with bound `n0` for φ1.
pub fn movie_access(n0: usize) -> AccessSchema {
    AccessSchema::new(vec![
        AccessConstraint::new("movie", &["studio", "release"], &["mid"], n0).unwrap(),
        AccessConstraint::new("rating", &["mid"], &["rank"], 1).unwrap(),
    ])
}

/// The query `Q_0` of Example 1.1.
pub fn q0() -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        vec![Term::var("mid")],
        vec![
            Atom::new(
                "person",
                vec![Term::var("xp"), Term::var("xp2"), Term::cnst("NASA")],
            ),
            Atom::new(
                "movie",
                vec![
                    Term::var("mid"),
                    Term::var("ym"),
                    Term::cnst("Universal"),
                    Term::cnst("2014"),
                ],
            ),
            Atom::new(
                "like",
                vec![Term::var("xp"), Term::var("mid"), Term::cnst("movie")],
            ),
            Atom::new("rating", vec![Term::var("mid"), Term::cnst(5)]),
        ],
    )
    .unwrap()
}

/// The view `V_1` of Example 1.1: movies liked by NASA folks.
pub fn v1() -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        vec![Term::var("mid")],
        vec![
            Atom::new(
                "person",
                vec![Term::var("xp"), Term::var("xp2"), Term::cnst("NASA")],
            ),
            Atom::new(
                "movie",
                vec![
                    Term::var("mid"),
                    Term::var("ym"),
                    Term::var("z1"),
                    Term::var("z2"),
                ],
            ),
            Atom::new(
                "like",
                vec![Term::var("xp"), Term::var("mid"), Term::cnst("movie")],
            ),
        ],
    )
    .unwrap()
}

/// A small instance of `R_0` that satisfies `A_0` (with `n0 >= 2`).
pub fn movie_instance() -> Database {
    use bqr_data::tuple;
    let mut db = Database::empty(movie_schema());
    db.insert("person", tuple![1, "Ann", "NASA"]).unwrap();
    db.insert("person", tuple![2, "Bob", "NASA"]).unwrap();
    db.insert("person", tuple![3, "Cat", "ESA"]).unwrap();
    db.insert("movie", tuple![10, "Lucy", "Universal", "2014"])
        .unwrap();
    db.insert("movie", tuple![11, "Ouija", "Universal", "2014"])
        .unwrap();
    db.insert("movie", tuple![12, "Her", "WB", "2013"]).unwrap();
    db.insert("rating", tuple![10, 5]).unwrap();
    db.insert("rating", tuple![11, 3]).unwrap();
    db.insert("rating", tuple![12, 5]).unwrap();
    db.insert("like", tuple![1, 10, "movie"]).unwrap();
    db.insert("like", tuple![2, 12, "movie"]).unwrap();
    db.insert("like", tuple![3, 11, "movie"]).unwrap();
    db
}

/// Shorthand for a variable term.
#[allow(dead_code)]
pub fn v(name: &str) -> Term {
    Term::var(name)
}

/// Shorthand for a constant term.
#[allow(dead_code)]
pub fn c(value: impl Into<bqr_data::Value>) -> Term {
    Term::cnst(value)
}

/// Shorthand for an atom whose arguments are all variables.
pub fn va(rel: &str, vars: &[&str]) -> Atom {
    Atom::new(rel, vars.iter().map(|x| Term::var(*x)).collect())
}
