//! # bqr-query — query languages and static analyses under access schemas
//!
//! This crate implements the query-language substrate of the reproduction of
//! *Bounded Query Rewriting Using Views* (Cao, Fan, Geerts, Lu):
//!
//! * [`Term`], [`Atom`] — atomic building blocks;
//! * [`ConjunctiveQuery`] (CQ / SPC), [`UnionQuery`] (UCQ / SPCU) and the full
//!   first-order AST [`Fo`] / [`FoQuery`] (relational algebra / FO), plus the
//!   classification into the languages studied by the paper
//!   ([`QueryLanguage`]);
//! * [`ViewSet`] — named, L-definable views and their materialised extents;
//! * tableau / canonical-instance machinery ([`canonical`]),
//!   homomorphisms ([`hom`]) and classical containment ([`containment`]);
//! * acyclicity via GYO reduction ([`acyclic`]);
//! * the FD-chase ([`chase`]) used by the PTIME special cases;
//! * **element queries** ([`element`]) — the minimal `A`-satisfying
//!   specialisations of a CQ that drive the paper's decision procedures;
//! * covered variables `cov(Q, A)` ([`cover`]) and the bounded-output
//!   analysis `BOP` ([`bounded_output`], Theorem 3.4);
//! * `A`-containment / `A`-equivalence and satisfiability under an access
//!   schema ([`aequiv`], Lemma 3.2);
//! * naive evaluation of CQ / UCQ / FO queries over instances and cached
//!   views ([`eval`]) — the "commercial engine" baseline of the benchmarks;
//! * a small text [`parser`] for conjunctive queries, used by examples and
//!   tests.

pub mod acyclic;
pub mod aequiv;
pub mod atom;
pub mod bounded_output;
pub mod budget;
pub mod canonical;
pub mod chase;
pub mod containment;
pub mod cover;
pub mod cq;
pub mod element;
pub mod error;
pub mod eval;
pub mod fo;
pub mod hom;
pub mod maintain;
pub mod parser;
pub mod planner;
pub mod ucq;
pub mod views;

#[cfg(test)]
pub(crate) mod testutil;

pub use atom::{Atom, Term};
pub use budget::Budget;
pub use cq::ConjunctiveQuery;
pub use error::QueryError;
pub use fo::{Fo, FoQuery, QueryLanguage};
pub use planner::{JoinStrategy, PlannerConfig};
pub use ucq::UnionQuery;
pub use views::{MaterializedViews, ViewDefinition, ViewSet};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, QueryError>;
