//! Conjunctive queries (CQ, a.k.a. SPC queries).
//!
//! A conjunctive query `Q(x̄) = ∃ x̄' φ(x̄, x̄')` is represented by its head
//! terms (free variables and constants, in output order) and its list of
//! relation atoms.  Equality atoms `x = y` / `x = c` are normalised away at
//! construction time by substitution, which preserves the semantics and
//! simplifies every downstream analysis (the element-query machinery
//! re-introduces equalities as partitions of the tableau's terms).

use crate::atom::{Atom, Term};
use crate::error::QueryError;
use crate::Result;
use bqr_data::DatabaseSchema;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A conjunctive query.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConjunctiveQuery {
    head: Vec<Term>,
    atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Create a conjunctive query, checking *safety*: every head variable
    /// must occur in some atom.
    pub fn new(head: Vec<Term>, atoms: Vec<Atom>) -> Result<Self> {
        let body_vars: BTreeSet<String> = atoms.iter().flat_map(|a| a.variables()).collect();
        for t in &head {
            if let Term::Var(v) = t {
                if !body_vars.contains(v) {
                    return Err(QueryError::UnsafeHeadVariable(v.clone()));
                }
            }
        }
        Ok(ConjunctiveQuery { head, atoms })
    }

    /// A Boolean conjunctive query (empty head).
    pub fn boolean(atoms: Vec<Atom>) -> Result<Self> {
        ConjunctiveQuery::new(Vec::new(), atoms)
    }

    /// The head terms, in output order.
    pub fn head(&self) -> &[Term] {
        &self.head
    }

    /// The body atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Output arity.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// True for Boolean queries.
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// The size `|Q|` of the query: total number of atoms plus head terms
    /// (the measure used in the paper's complexity statements).
    pub fn size(&self) -> usize {
        self.atoms.len() + self.head.len()
    }

    /// All variables occurring in the query (head or body).
    pub fn variables(&self) -> BTreeSet<String> {
        let mut vars: BTreeSet<String> = self.atoms.iter().flat_map(|a| a.variables()).collect();
        for t in &self.head {
            if let Term::Var(v) = t {
                vars.insert(v.clone());
            }
        }
        vars
    }

    /// The head (free) variables.
    pub fn head_variables(&self) -> BTreeSet<String> {
        self.head
            .iter()
            .filter_map(|t| t.as_var().map(str::to_string))
            .collect()
    }

    /// The existentially quantified variables (body variables not in the head).
    pub fn existential_variables(&self) -> BTreeSet<String> {
        let head = self.head_variables();
        self.variables()
            .into_iter()
            .filter(|v| !head.contains(v))
            .collect()
    }

    /// Names of all relations (and views) mentioned in the body.
    pub fn relation_names(&self) -> BTreeSet<String> {
        self.atoms
            .iter()
            .map(|a| a.relation().to_string())
            .collect()
    }

    /// All constants mentioned anywhere in the query (head or body).  Bounded
    /// rewritings may only use constants taken from the query (Section 2).
    pub fn constants(&self) -> BTreeSet<bqr_data::Value> {
        let mut out = BTreeSet::new();
        for t in self
            .head
            .iter()
            .chain(self.atoms.iter().flat_map(|a| a.args().iter()))
        {
            if let Term::Const(c) = t {
                out.insert(c.clone());
            }
        }
        out
    }

    /// True if no relation name appears in two different atoms.
    pub fn is_self_join_free(&self) -> bool {
        let mut seen = BTreeSet::new();
        self.atoms
            .iter()
            .all(|a| seen.insert(a.relation().to_string()))
    }

    /// Validate every atom against the schema, treating names in
    /// `view_names` as views with the given arities.
    pub fn validate(
        &self,
        schema: &DatabaseSchema,
        view_arities: &BTreeMap<String, usize>,
    ) -> Result<()> {
        for atom in &self.atoms {
            if let Some(&arity) = view_arities.get(atom.relation()) {
                if atom.arity() != arity {
                    return Err(QueryError::AtomArity {
                        relation: atom.relation().to_string(),
                        expected: arity,
                        actual: atom.arity(),
                    });
                }
            } else {
                atom.validate_against_schema(schema)?;
            }
        }
        Ok(())
    }

    /// Apply a variable substitution to head and body.
    pub fn substitute(&self, map: &BTreeMap<String, Term>) -> ConjunctiveQuery {
        ConjunctiveQuery {
            head: self
                .head
                .iter()
                .map(|t| match t {
                    Term::Var(v) => map.get(v).cloned().unwrap_or_else(|| t.clone()),
                    Term::Const(_) => t.clone(),
                })
                .collect(),
            atoms: self.atoms.iter().map(|a| a.substitute(map)).collect(),
        }
    }

    /// Rename every variable by appending `suffix`, producing a query that
    /// shares no variable with the original.  Used when combining queries
    /// (view unfolding, element-query construction, plan-to-query
    /// conversion) to avoid accidental capture.
    pub fn rename_apart(&self, suffix: &str) -> ConjunctiveQuery {
        let map: BTreeMap<String, Term> = self
            .variables()
            .into_iter()
            .map(|v| (v.clone(), Term::var(format!("{v}{suffix}"))))
            .collect();
        self.substitute(&map)
    }

    /// Canonicalise variable names to `v0, v1, ...` in order of first
    /// occurrence (head first, then body).  Two queries that are identical up
    /// to variable renaming canonicalise to equal values.
    pub fn canonical_form(&self) -> ConjunctiveQuery {
        let mut map: BTreeMap<String, Term> = BTreeMap::new();
        let mut next = 0usize;
        let visit = |t: &Term, map: &mut BTreeMap<String, Term>, next: &mut usize| {
            if let Term::Var(v) = t {
                if !map.contains_key(v) {
                    map.insert(v.clone(), Term::var(format!("v{next}")));
                    *next += 1;
                }
            }
        };
        for t in &self.head {
            visit(t, &mut map, &mut next);
        }
        for a in &self.atoms {
            for t in a.args() {
                visit(t, &mut map, &mut next);
            }
        }
        self.substitute(&map)
    }

    /// Conjoin another query: the result's head is this query's head and the
    /// body is the union of both bodies.  The caller is responsible for
    /// renaming apart if variable sharing is not intended.
    pub fn conjoin(&self, other: &ConjunctiveQuery) -> ConjunctiveQuery {
        let mut atoms = self.atoms.clone();
        atoms.extend(other.atoms.iter().cloned());
        ConjunctiveQuery {
            head: self.head.clone(),
            atoms,
        }
    }

    /// Replace the head while keeping the body.
    pub fn with_head(&self, head: Vec<Term>) -> Result<ConjunctiveQuery> {
        ConjunctiveQuery::new(head, self.atoms.clone())
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q(")?;
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") :- ")?;
        if self.atoms.is_empty() {
            write!(f, "true")?;
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqr_data::Value;

    use crate::testutil::q0;

    #[test]
    fn safety_is_enforced() {
        let err = ConjunctiveQuery::new(
            vec![Term::var("z")],
            vec![Atom::new("r", vec![Term::var("x")])],
        )
        .unwrap_err();
        assert!(matches!(err, QueryError::UnsafeHeadVariable(v) if v == "z"));
        // Constants in the head are always safe.
        assert!(ConjunctiveQuery::new(
            vec![Term::cnst(1)],
            vec![Atom::new("r", vec![Term::var("x")])]
        )
        .is_ok());
    }

    #[test]
    fn q0_accessors() {
        let q = q0();
        assert_eq!(q.arity(), 1);
        assert!(!q.is_boolean());
        assert_eq!(q.atoms().len(), 4);
        assert_eq!(q.size(), 5);
        assert_eq!(
            q.head_variables().into_iter().collect::<Vec<_>>(),
            vec!["mid".to_string()]
        );
        assert!(q.existential_variables().contains("xp"));
        assert!(q.existential_variables().contains("ym"));
        assert!(!q.existential_variables().contains("mid"));
        assert_eq!(q.relation_names().len(), 4);
        assert!(q.constants().contains(&Value::str("NASA")));
        assert!(q.constants().contains(&Value::int(5)));
        assert!(q.is_self_join_free());
    }

    #[test]
    fn self_join_detection() {
        let q = ConjunctiveQuery::boolean(vec![
            Atom::new("r", vec![Term::var("x"), Term::var("y")]),
            Atom::new("r", vec![Term::var("y"), Term::var("z")]),
        ])
        .unwrap();
        assert!(!q.is_self_join_free());
        assert!(q.is_boolean());
        assert_eq!(q.arity(), 0);
    }

    #[test]
    fn validation_checks_views_and_relations() {
        let schema = DatabaseSchema::with_relations(&[
            ("person", &["pid", "name", "affiliation"]),
            ("movie", &["mid", "mname", "studio", "release"]),
            ("rating", &["mid", "rank"]),
            ("like", &["pid", "id", "type"]),
        ])
        .unwrap();
        let q = q0();
        assert!(q.validate(&schema, &BTreeMap::new()).is_ok());

        // A query that uses a view name validates against the declared arity.
        let with_view = ConjunctiveQuery::new(
            vec![Term::var("m")],
            vec![
                Atom::new("V1", vec![Term::var("m")]),
                Atom::new("rating", vec![Term::var("m"), Term::cnst(5)]),
            ],
        )
        .unwrap();
        assert!(matches!(
            with_view.validate(&schema, &BTreeMap::new()),
            Err(QueryError::UnknownRelation(_))
        ));
        let mut arities = BTreeMap::new();
        arities.insert("V1".to_string(), 1usize);
        assert!(with_view.validate(&schema, &arities).is_ok());
        arities.insert("V1".to_string(), 2usize);
        assert!(matches!(
            with_view.validate(&schema, &arities),
            Err(QueryError::AtomArity { .. })
        ));
    }

    #[test]
    fn substitution_and_rename_apart() {
        let q = q0();
        let renamed = q.rename_apart("_1");
        assert!(renamed.variables().iter().all(|v| v.ends_with("_1")));
        assert!(renamed.variables().is_disjoint(&q.variables()));
        assert_eq!(renamed.atoms().len(), q.atoms().len());

        let mut map = BTreeMap::new();
        map.insert("mid".to_string(), Term::cnst(7));
        let grounded = q.substitute(&map);
        assert_eq!(grounded.head()[0], Term::cnst(7));
    }

    #[test]
    fn canonical_form_identifies_renamings() {
        let a = ConjunctiveQuery::new(
            vec![Term::var("x")],
            vec![Atom::new("r", vec![Term::var("x"), Term::var("y")])],
        )
        .unwrap();
        let b = ConjunctiveQuery::new(
            vec![Term::var("u")],
            vec![Atom::new("r", vec![Term::var("u"), Term::var("w")])],
        )
        .unwrap();
        assert_ne!(a, b);
        assert_eq!(a.canonical_form(), b.canonical_form());
        let c = ConjunctiveQuery::new(
            vec![Term::var("u")],
            vec![Atom::new("r", vec![Term::var("w"), Term::var("u")])],
        )
        .unwrap();
        assert_ne!(a.canonical_form(), c.canonical_form());
    }

    #[test]
    fn conjoin_and_with_head() {
        let a = ConjunctiveQuery::new(
            vec![Term::var("x")],
            vec![Atom::new("r", vec![Term::var("x")])],
        )
        .unwrap();
        let b = ConjunctiveQuery::boolean(vec![Atom::new("s", vec![Term::var("y")])]).unwrap();
        let c = a.conjoin(&b);
        assert_eq!(c.atoms().len(), 2);
        assert_eq!(c.head(), a.head());
        let d = c.with_head(vec![Term::var("y")]).unwrap();
        assert_eq!(d.head()[0], Term::var("y"));
        assert!(c.with_head(vec![Term::var("zzz")]).is_err());
    }

    #[test]
    fn display_is_datalog_like() {
        let q = q0();
        let s = q.to_string();
        assert!(s.starts_with("Q(mid) :- "));
        assert!(s.contains("movie(mid, ym, \"Universal\", \"2014\")"));
        let t = ConjunctiveQuery::boolean(vec![]).unwrap().to_string();
        assert!(t.contains("true"));
    }
}
