//! # bqr-bench — experiment harness
//!
//! The library half of the benchmark crate: shared measurement helpers used
//! both by the `harness` binary (which prints the tables recorded in
//! EXPERIMENTS.md) and by the Criterion benches.

use bqr_core::problem::RewritingSetting;
use bqr_core::size_bounded::BoundedOutputOracle;
use bqr_core::topped::{ToppedAnalysis, ToppedChecker};
use bqr_data::{Database, FetchStats, IndexedDatabase};
use bqr_plan::QueryPlan;
use bqr_query::eval::Evaluator;
use bqr_query::{ConjunctiveQuery, MaterializedViews};
use std::time::Instant;

/// The result of answering one query both ways.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Base tuples accessed by the bounded plan (`|D_ξ|`).
    pub bounded_access: usize,
    /// Base tuples accessed by the naive evaluation.
    pub naive_access: usize,
    /// Wall-clock milliseconds for the bounded plan.
    pub bounded_ms: f64,
    /// Wall-clock milliseconds for the naive evaluation.
    pub naive_ms: f64,
    /// Number of answers (identical for both, asserted).
    pub answers: usize,
}

impl Comparison {
    /// Access reduction factor (naive / bounded).
    pub fn access_reduction(&self) -> f64 {
        guarded_ratio(self.naive_access as f64, self.bounded_access as f64)
    }

    /// Speed-up factor (naive / bounded wall-clock).
    pub fn speedup(&self) -> f64 {
        guarded_ratio(self.naive_ms, self.bounded_ms)
    }
}

/// `naive / bounded` with one consistent guard for zero-ish denominators:
/// `0/0` reports parity (`1.0`), a strictly positive numerator over a
/// zero-ish denominator reports `+∞`.  Timings below a nanosecond and
/// zero-tuple accesses both count as zero-ish, so `speedup` and
/// `access_reduction` behave identically at the boundary instead of one
/// clamping and the other dividing by an epsilon.
pub(crate) fn guarded_ratio(naive: f64, bounded: f64) -> f64 {
    const ZERO_ISH: f64 = 1e-9;
    if bounded <= ZERO_ISH {
        if naive <= ZERO_ISH {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        naive / bounded
    }
}

/// Build the runtime objects for a setting over one instance.
pub fn prepare(setting: &RewritingSetting, db: Database) -> (IndexedDatabase, MaterializedViews) {
    let cache = setting
        .views
        .materialize(&db)
        .expect("views materialise over generated instances");
    let idb = IndexedDatabase::build(db, setting.access.clone())
        .expect("indices build over generated instances");
    (idb, cache)
}

/// A topped-query checker with the given per-view output-bound annotations.
pub fn checker_with_annotations<'a>(
    setting: &'a RewritingSetting,
    annotations: &[(&str, usize)],
) -> ToppedChecker<'a> {
    let mut oracle = BoundedOutputOracle::new(
        setting.schema.clone(),
        setting.access.clone(),
        setting.budget,
    );
    for (name, bound) in annotations {
        oracle.annotate_view(*name, *bound);
    }
    ToppedChecker::with_oracle(setting, oracle)
}

/// Analyse a query; panics with the rejection reason if it is not topped
/// (benchmark workloads are designed so their rewritable queries are topped).
pub fn plan_for(checker: &ToppedChecker<'_>, query: &ConjunctiveQuery) -> ToppedAnalysis {
    checker
        .analyze_cq(query)
        .expect("the analysis itself does not fail")
}

/// Execute one query both through a bounded plan and naively, asserting that
/// the answers agree.  One-shot; use [`compare_with`] to share an
/// [`Evaluator`]'s relation-index cache across a workload.
pub fn compare(
    query: &ConjunctiveQuery,
    plan: &QueryPlan,
    idb: &IndexedDatabase,
    cache: &MaterializedViews,
) -> Comparison {
    compare_with(&Evaluator::new(), query, plan, idb, cache)
}

/// [`compare`] with a caller-provided evaluator, so repeated comparisons
/// against the same instance reuse the naive engine's hash indexes.
pub fn compare_with(
    evaluator: &Evaluator,
    query: &ConjunctiveQuery,
    plan: &QueryPlan,
    idb: &IndexedDatabase,
    cache: &MaterializedViews,
) -> Comparison {
    let t = Instant::now();
    let bounded = bqr_plan::execute(plan, idb, cache).expect("bounded plans execute");
    let bounded_ms = t.elapsed().as_secs_f64() * 1_000.0;

    let t = Instant::now();
    let mut naive_stats = FetchStats::new();
    let naive = evaluator
        .eval_cq_counting(query, idb.database(), Some(cache), &mut naive_stats)
        .expect("naive evaluation succeeds");
    let naive_ms = t.elapsed().as_secs_f64() * 1_000.0;

    assert_eq!(bounded.tuples, naive, "bounded rewriting must be exact");
    Comparison {
        bounded_access: bounded.stats.base_tuples_accessed(),
        naive_access: naive_stats.base_tuples_accessed(),
        bounded_ms,
        naive_ms,
        answers: naive.len(),
    }
}

/// The `hom` microbenchmark: the slot-based homomorphism engine with cached
/// relation indexes versus the retained pre-refactor engine, on repeated
/// containment checks (the dominant cost of the `A`-equivalence and exact
/// VBRP procedures), plus the cyclic-workload cases where the cost-based
/// planner's generic join is measured against the PR 1 fixed-order engine.
/// Shared by `benches/hom.rs` and the harness's `hom` mode, which persists
/// the numbers to `BENCH_hom.json`.
pub mod hom_bench {
    use bqr_data::{Database, DatabaseSchema, Relation};
    use bqr_query::atom::Term;
    use bqr_query::canonical::canonical_instance;
    use bqr_query::containment::ContainmentChecker;
    use bqr_query::eval::Evaluator;
    use bqr_query::hom::{reference, Assignment};
    use bqr_query::parser::parse_cq;
    use bqr_query::{ConjunctiveQuery, JoinStrategy, PlannerConfig};
    use bqr_workload::movies;
    use std::collections::BTreeMap;
    use std::time::Instant;

    /// One containment case: a `(q1, q2, schema)` triple plus the expected
    /// verdict (asserted by both engines on every run).
    pub struct ContainmentCase {
        pub name: &'static str,
        pub q1: ConjunctiveQuery,
        pub q2: ConjunctiveQuery,
        pub schema: DatabaseSchema,
        pub expected: bool,
    }

    /// The measured result of one case.
    #[derive(Debug, Clone)]
    pub struct CaseResult {
        pub name: &'static str,
        pub repeats: usize,
        /// Pre-refactor engine: canonical instance and hash indexes rebuilt
        /// on every check (exactly what the old `cq_contained_in` did).
        pub baseline_ms: f64,
        /// Slot engine through a shared [`ContainmentChecker`]: canonical
        /// instances memoised, indexes cached.
        pub slot_cached_ms: f64,
    }

    impl CaseResult {
        /// Wall-clock improvement factor (baseline / slot), with the same
        /// zero-denominator convention as [`Comparison`](crate::Comparison).
        pub fn speedup(&self) -> f64 {
            crate::guarded_ratio(self.baseline_ms, self.slot_cached_ms)
        }
    }

    fn path_query(len: usize) -> ConjunctiveQuery {
        let mut body = String::from("Q() :- e(x0, x1)");
        for i in 1..len {
            body.push_str(&format!(", e(x{i}, x{})", i + 1));
        }
        parse_cq(&body).unwrap()
    }

    /// The benchmark's containment cases.
    pub fn cases() -> Vec<ContainmentCase> {
        let path_schema = DatabaseSchema::with_relations(&[("e", &["src", "dst"])]).unwrap();
        let movie_unfolded = movies::views().unfold_cq(&movies::q_xi()).unwrap();
        vec![
            ContainmentCase {
                name: "path6_in_path3",
                q1: path_query(6),
                q2: path_query(3),
                schema: path_schema.clone(),
                expected: true,
            },
            ContainmentCase {
                name: "path3_not_in_path6",
                q1: path_query(3),
                q2: path_query(6),
                schema: path_schema,
                expected: false,
            },
            ContainmentCase {
                name: "movie_q0_in_unfolded_rewriting",
                q1: movies::q0(),
                q2: movie_unfolded,
                schema: movies::schema(),
                expected: true,
            },
        ]
    }

    /// The pre-refactor containment test: fresh canonical instance, fresh
    /// indexes, `BTreeMap`-driven search — per call.
    pub fn reference_cq_contained_in(
        q1: &ConjunctiveQuery,
        q2: &ConjunctiveQuery,
        schema: &DatabaseSchema,
    ) -> bool {
        let canon = canonical_instance(q1, schema).expect("benchmark queries are valid");
        let mut initial = Assignment::new();
        for (i, term) in q2.head().iter().enumerate() {
            let want = &canon.summary[i];
            match term {
                Term::Const(c) => {
                    if c != want {
                        return false;
                    }
                }
                Term::Var(v) => match initial.get(v) {
                    Some(existing) if existing != want => return false,
                    _ => {
                        initial.insert(v.clone(), want.clone());
                    }
                },
            }
        }
        let relations: BTreeMap<String, &Relation> = q2
            .relation_names()
            .into_iter()
            .map(|name| {
                let rel = canon.database.relation(&name).expect("base relations only");
                (name, rel)
            })
            .collect();
        reference::has_homomorphism(q2.atoms(), &relations, &initial)
            .expect("benchmark searches succeed")
    }

    /// Run one case `repeats`× through both engines, asserting agreement.
    pub fn run_case(case: &ContainmentCase, repeats: usize) -> CaseResult {
        let t = Instant::now();
        for _ in 0..repeats {
            let got = reference_cq_contained_in(&case.q1, &case.q2, &case.schema);
            assert_eq!(
                got, case.expected,
                "baseline verdict changed on {}",
                case.name
            );
        }
        let baseline_ms = t.elapsed().as_secs_f64() * 1_000.0;

        let checker = ContainmentChecker::new(&case.schema);
        let t = Instant::now();
        for _ in 0..repeats {
            let got = checker.cq_contained_in(&case.q1, &case.q2).unwrap();
            assert_eq!(got, case.expected, "slot verdict changed on {}", case.name);
        }
        let slot_cached_ms = t.elapsed().as_secs_f64() * 1_000.0;

        CaseResult {
            name: case.name,
            repeats,
            baseline_ms,
            slot_cached_ms,
        }
    }

    /// One cyclic-evaluation case: a query over an adversarial graph where
    /// the atom-at-a-time engine is forced through a quadratic intermediate
    /// result while the generic join stays near-linear.  The baseline is the
    /// PR 1 fixed-order slot engine ([`JoinStrategy::Heuristic`]); the
    /// contender is the cost-based planner ([`JoinStrategy::Auto`], which
    /// picks generic join for these shapes).
    pub struct EvalCase {
        pub name: &'static str,
        pub query: ConjunctiveQuery,
        pub db: Database,
    }

    /// The AGM-style lower-bound instance for the triangle query: a
    /// tripartite graph `A → B → C → A` where one hub node per part is
    /// connected to everything in the next part.  `|E| = 6n`, the triangle
    /// count is `Θ(n)`, but every atom order must enumerate a `Θ(n²)`
    /// intermediate join.  Node encoding: `A = 3i`, `B = 3i+1`, `C = 3i+2`.
    fn agm_graph(n: i64, parts: i64) -> Database {
        let schema = DatabaseSchema::with_relations(&[("e", &["src", "dst"])]).unwrap();
        let mut db = Database::empty(schema);
        let node = |part: i64, i: i64| part + parts * i;
        for part in 0..parts {
            let next = (part + 1) % parts;
            for i in 0..n {
                // Hub of this part reaches everything in the next part, and
                // everything in this part reaches the next part's hub.
                db.insert("e", bqr_data::tuple![node(part, 0), node(next, i)])
                    .unwrap();
                db.insert("e", bqr_data::tuple![node(part, i), node(next, 0)])
                    .unwrap();
            }
        }
        db
    }

    fn k_cycle_query(k: usize) -> ConjunctiveQuery {
        let mut body = String::from("Q() :- ");
        for i in 0..k {
            if i > 0 {
                body.push_str(", ");
            }
            body.push_str(&format!("e(x{i}, x{})", (i + 1) % k));
        }
        parse_cq(&body).unwrap()
    }

    /// A skewed chain instance for the cost-model case: `u` is large, `t` is
    /// tiny, and only a handful of `e`-edges reach `t`.  With no constants
    /// anywhere the PR 1 heuristic scores every atom equally and falls back
    /// to declaration order, starting from the big unary relation and
    /// scanning all of it; the cost-based order ignores declaration order,
    /// starts from `t` and probes backwards, touching a constant number of
    /// tuples.
    fn skewed_chain(n: i64) -> (ConjunctiveQuery, Database) {
        let schema =
            DatabaseSchema::with_relations(&[("u", &["a"]), ("e", &["a", "b"]), ("t", &["b"])])
                .unwrap();
        let mut db = Database::empty(schema);
        for i in 0..n {
            db.insert("u", bqr_data::tuple![i]).unwrap();
            db.insert("e", bqr_data::tuple![i, n + i]).unwrap();
        }
        for i in 0..3i64 {
            db.insert("t", bqr_data::tuple![n + i]).unwrap();
        }
        let query = parse_cq("Q() :- t(y), e(x, y), u(x)").unwrap();
        (query, db)
    }

    /// The planner evaluation cases of the `hom` benchmark: the cyclic
    /// (triangle) workload where generic join wins, and the skewed chain
    /// where the selectivity cost model wins.
    pub fn eval_cases() -> Vec<EvalCase> {
        let (chain_query, chain_db) = skewed_chain(20_000);
        vec![
            EvalCase {
                name: "triangle_agm_n400",
                query: k_cycle_query(3),
                db: agm_graph(400, 3),
            },
            EvalCase {
                name: "chain_skew_n20000",
                query: chain_query,
                db: chain_db,
            },
        ]
    }

    /// Run one cyclic case `repeats`× under the fixed-order baseline and the
    /// planner, asserting both produce the same answers.  Warm caches on
    /// both sides: the comparison isolates join strategy, not caching.
    pub fn run_eval_case(case: &EvalCase, repeats: usize) -> CaseResult {
        let fixed =
            Evaluator::new().with_planner(PlannerConfig::with_strategy(JoinStrategy::Heuristic));
        let planned =
            Evaluator::new().with_planner(PlannerConfig::with_strategy(JoinStrategy::Auto));
        let expected = fixed.eval_cq(&case.query, &case.db, None).unwrap();
        assert_eq!(
            expected,
            planned.eval_cq(&case.query, &case.db, None).unwrap(),
            "strategies disagree on {}",
            case.name
        );

        let t = Instant::now();
        for _ in 0..repeats {
            let got = fixed.eval_cq(&case.query, &case.db, None).unwrap();
            assert_eq!(got.len(), expected.len());
        }
        let baseline_ms = t.elapsed().as_secs_f64() * 1_000.0;

        let t = Instant::now();
        for _ in 0..repeats {
            let got = planned.eval_cq(&case.query, &case.db, None).unwrap();
            assert_eq!(got.len(), expected.len());
        }
        let slot_cached_ms = t.elapsed().as_secs_f64() * 1_000.0;

        CaseResult {
            name: case.name,
            repeats,
            baseline_ms,
            slot_cached_ms,
        }
    }

    /// How often each cyclic evaluation case runs in the committed report.
    pub const EVAL_REPEATS: usize = 10;

    /// Run every case and render the machine-readable report committed as
    /// `BENCH_hom.json`.  Containment rows compare the slot engine against
    /// the pre-refactor reference engine; the cyclic `*_agm_*` rows compare
    /// the cost-based planner (generic join) against the PR 1 fixed-order
    /// slot engine.
    pub fn report(repeats: usize) -> (Vec<CaseResult>, String) {
        let mut results: Vec<CaseResult> = cases().iter().map(|c| run_case(c, repeats)).collect();
        results.extend(eval_cases().iter().map(|c| run_eval_case(c, EVAL_REPEATS)));
        let mut json = String::from("{\n  \"bench\": \"hom\",\n  \"unit\": \"ms\",\n");
        json.push_str(&format!("  \"repeats\": {repeats},\n  \"cases\": [\n"));
        for (i, r) in results.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"repeats\": {}, \"baseline_ms\": {:.3}, \"slot_cached_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
                r.name,
                r.repeats,
                r.baseline_ms,
                r.slot_cached_ms,
                r.speedup(),
                if i + 1 < results.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        (results, json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqr_workload::movies;

    #[test]
    fn ratio_guards_are_consistent() {
        let cmp = Comparison {
            bounded_access: 0,
            naive_access: 0,
            bounded_ms: 0.0,
            naive_ms: 0.0,
            answers: 0,
        };
        assert_eq!(cmp.access_reduction(), 1.0, "0/0 access is parity");
        assert_eq!(cmp.speedup(), 1.0, "0/0 time is parity");
        let cmp = Comparison {
            bounded_access: 0,
            naive_access: 10,
            bounded_ms: 0.0,
            naive_ms: 2.5,
            answers: 1,
        };
        assert!(cmp.access_reduction().is_infinite());
        assert!(cmp.speedup().is_infinite());
        let cmp = Comparison {
            bounded_access: 5,
            naive_access: 10,
            bounded_ms: 2.0,
            naive_ms: 4.0,
            answers: 1,
        };
        assert_eq!(cmp.access_reduction(), 2.0);
        assert_eq!(cmp.speedup(), 2.0);
    }

    #[test]
    fn hom_bench_engines_agree_and_report_renders() {
        let (results, json) = hom_bench::report(3);
        assert_eq!(results.len(), 5);
        assert!(json.contains("\"bench\": \"hom\""));
        assert!(json.contains("path6_in_path3"));
        assert!(json.contains("triangle_agm_n400"));
        assert!(json.contains("chain_skew_n20000"));
        for r in &results {
            assert!(r.speedup() > 0.0);
        }
    }

    #[test]
    fn planner_beats_fixed_order_on_cyclic_workloads() {
        for case in hom_bench::eval_cases() {
            let r = hom_bench::run_eval_case(&case, 2);
            assert!(
                r.speedup() > 1.0,
                "{}: planner ({:.2} ms) must beat the fixed-order engine ({:.2} ms)",
                r.name,
                r.slot_cached_ms,
                r.baseline_ms
            );
        }
    }

    #[test]
    fn compare_helper_round_trips_the_movie_example() {
        let setting = movies::setting(50, 40);
        let checker = checker_with_annotations(&setting, &[]);
        let analysis = plan_for(&checker, &movies::q_xi());
        assert!(analysis.topped);
        let db = movies::generate(movies::MovieScale {
            persons: 500,
            movies: 300,
            n0: 50,
            seed: 2,
        });
        let (idb, cache) = prepare(&setting, db);
        let cmp = compare(&movies::q0(), &analysis.plan.unwrap(), &idb, &cache);
        assert!(cmp.bounded_access <= 150);
        assert!(cmp.naive_access > cmp.bounded_access);
        assert!(cmp.access_reduction() > 1.0);
        assert!(cmp.speedup() > 0.0);
    }
}
