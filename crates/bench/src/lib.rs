//! # bqr-bench — experiment harness
//!
//! The library half of the benchmark crate: shared measurement helpers used
//! both by the `harness` binary (which prints the tables recorded in
//! EXPERIMENTS.md) and by the Criterion benches.

use bqr_core::problem::RewritingSetting;
use bqr_core::size_bounded::BoundedOutputOracle;
use bqr_core::topped::{ToppedAnalysis, ToppedChecker};
use bqr_data::{Database, FetchStats, IndexedDatabase};
use bqr_plan::QueryPlan;
use bqr_query::eval::Evaluator;
use bqr_query::{ConjunctiveQuery, MaterializedViews};
use std::time::Instant;

/// The result of answering one query both ways.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Base tuples accessed by the bounded plan (`|D_ξ|`).
    pub bounded_access: usize,
    /// Base tuples accessed by the naive evaluation.
    pub naive_access: usize,
    /// Wall-clock milliseconds for the bounded plan.
    pub bounded_ms: f64,
    /// Wall-clock milliseconds for the naive evaluation.
    pub naive_ms: f64,
    /// Number of answers (identical for both, asserted).
    pub answers: usize,
}

impl Comparison {
    /// Access reduction factor (naive / bounded).
    pub fn access_reduction(&self) -> f64 {
        guarded_ratio(self.naive_access as f64, self.bounded_access as f64)
    }

    /// Speed-up factor (naive / bounded wall-clock).
    pub fn speedup(&self) -> f64 {
        guarded_ratio(self.naive_ms, self.bounded_ms)
    }
}

/// `naive / bounded` with one consistent guard for zero-ish denominators:
/// `0/0` reports parity (`1.0`), a strictly positive numerator over a
/// zero-ish denominator reports `+∞`.  Timings below a nanosecond and
/// zero-tuple accesses both count as zero-ish, so `speedup` and
/// `access_reduction` behave identically at the boundary instead of one
/// clamping and the other dividing by an epsilon.
pub(crate) fn guarded_ratio(naive: f64, bounded: f64) -> f64 {
    const ZERO_ISH: f64 = 1e-9;
    if bounded <= ZERO_ISH {
        if naive <= ZERO_ISH {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        naive / bounded
    }
}

/// Build the runtime objects for a setting over one instance.
pub fn prepare(setting: &RewritingSetting, db: Database) -> (IndexedDatabase, MaterializedViews) {
    let cache = setting
        .views
        .materialize(&db)
        .expect("views materialise over generated instances");
    let idb = IndexedDatabase::build(db, setting.access.clone())
        .expect("indices build over generated instances");
    (idb, cache)
}

/// A topped-query checker with the given per-view output-bound annotations.
pub fn checker_with_annotations<'a>(
    setting: &'a RewritingSetting,
    annotations: &[(&str, usize)],
) -> ToppedChecker<'a> {
    let mut oracle = BoundedOutputOracle::new(
        setting.schema.clone(),
        setting.access.clone(),
        setting.budget,
    );
    for (name, bound) in annotations {
        oracle.annotate_view(*name, *bound);
    }
    ToppedChecker::with_oracle(setting, oracle)
}

/// Analyse a query; panics with the rejection reason if it is not topped
/// (benchmark workloads are designed so their rewritable queries are topped).
pub fn plan_for(checker: &ToppedChecker<'_>, query: &ConjunctiveQuery) -> ToppedAnalysis {
    checker
        .analyze_cq(query)
        .expect("the analysis itself does not fail")
}

/// Execute one query both through a bounded plan and naively, asserting that
/// the answers agree.  One-shot; use [`compare_with`] to share an
/// [`Evaluator`]'s relation-index cache across a workload.
pub fn compare(
    query: &ConjunctiveQuery,
    plan: &QueryPlan,
    idb: &IndexedDatabase,
    cache: &MaterializedViews,
) -> Comparison {
    compare_with(&Evaluator::new(), query, plan, idb, cache)
}

/// [`compare`] with a caller-provided evaluator, so repeated comparisons
/// against the same instance reuse the naive engine's hash indexes.
pub fn compare_with(
    evaluator: &Evaluator,
    query: &ConjunctiveQuery,
    plan: &QueryPlan,
    idb: &IndexedDatabase,
    cache: &MaterializedViews,
) -> Comparison {
    let t = Instant::now();
    let bounded = bqr_plan::execute(plan, idb, cache).expect("bounded plans execute");
    let bounded_ms = t.elapsed().as_secs_f64() * 1_000.0;

    let t = Instant::now();
    let mut naive_stats = FetchStats::new();
    let naive = evaluator
        .eval_cq_counting(query, idb.database(), Some(cache), &mut naive_stats)
        .expect("naive evaluation succeeds");
    let naive_ms = t.elapsed().as_secs_f64() * 1_000.0;

    assert_eq!(bounded.tuples, naive, "bounded rewriting must be exact");
    Comparison {
        bounded_access: bounded.stats.base_tuples_accessed(),
        naive_access: naive_stats.base_tuples_accessed(),
        bounded_ms,
        naive_ms,
        answers: naive.len(),
    }
}

/// The `hom` microbenchmark: the slot-based homomorphism engine with cached
/// relation indexes versus the retained pre-refactor engine, on repeated
/// containment checks (the dominant cost of the `A`-equivalence and exact
/// VBRP procedures), plus the cyclic-workload cases where the cost-based
/// planner's generic join is measured against the PR 1 fixed-order engine.
/// Shared by `benches/hom.rs` and the harness's `hom` mode, which persists
/// the numbers to `BENCH_hom.json`.
pub mod hom_bench {
    use bqr_data::{Database, DatabaseSchema, Relation};
    use bqr_query::atom::Term;
    use bqr_query::canonical::canonical_instance;
    use bqr_query::containment::ContainmentChecker;
    use bqr_query::eval::Evaluator;
    use bqr_query::hom::{reference, Assignment};
    use bqr_query::parser::parse_cq;
    use bqr_query::{ConjunctiveQuery, JoinStrategy, PlannerConfig};
    use bqr_workload::movies;
    use std::collections::BTreeMap;
    use std::time::Instant;

    /// One containment case: a `(q1, q2, schema)` triple plus the expected
    /// verdict (asserted by both engines on every run).
    pub struct ContainmentCase {
        pub name: &'static str,
        pub q1: ConjunctiveQuery,
        pub q2: ConjunctiveQuery,
        pub schema: DatabaseSchema,
        pub expected: bool,
    }

    /// The measured result of one case.
    #[derive(Debug, Clone)]
    pub struct CaseResult {
        pub name: &'static str,
        pub repeats: usize,
        /// Pre-refactor engine: canonical instance and hash indexes rebuilt
        /// on every check (exactly what the old `cq_contained_in` did).
        pub baseline_ms: f64,
        /// Slot engine through a shared [`ContainmentChecker`]: canonical
        /// instances memoised, indexes cached.
        pub slot_cached_ms: f64,
    }

    impl CaseResult {
        /// Wall-clock improvement factor (baseline / slot), with the same
        /// zero-denominator convention as [`Comparison`](crate::Comparison).
        pub fn speedup(&self) -> f64 {
            crate::guarded_ratio(self.baseline_ms, self.slot_cached_ms)
        }
    }

    fn path_query(len: usize) -> ConjunctiveQuery {
        let mut body = String::from("Q() :- e(x0, x1)");
        for i in 1..len {
            body.push_str(&format!(", e(x{i}, x{})", i + 1));
        }
        parse_cq(&body).unwrap()
    }

    /// The benchmark's containment cases.
    pub fn cases() -> Vec<ContainmentCase> {
        let path_schema = DatabaseSchema::with_relations(&[("e", &["src", "dst"])]).unwrap();
        let movie_unfolded = movies::views().unfold_cq(&movies::q_xi()).unwrap();
        vec![
            ContainmentCase {
                name: "path6_in_path3",
                q1: path_query(6),
                q2: path_query(3),
                schema: path_schema.clone(),
                expected: true,
            },
            ContainmentCase {
                name: "path3_not_in_path6",
                q1: path_query(3),
                q2: path_query(6),
                schema: path_schema,
                expected: false,
            },
            ContainmentCase {
                name: "movie_q0_in_unfolded_rewriting",
                q1: movies::q0(),
                q2: movie_unfolded,
                schema: movies::schema(),
                expected: true,
            },
        ]
    }

    /// The pre-refactor containment test: fresh canonical instance, fresh
    /// indexes, `BTreeMap`-driven search — per call.
    pub fn reference_cq_contained_in(
        q1: &ConjunctiveQuery,
        q2: &ConjunctiveQuery,
        schema: &DatabaseSchema,
    ) -> bool {
        let canon = canonical_instance(q1, schema).expect("benchmark queries are valid");
        let mut initial = Assignment::new();
        for (i, term) in q2.head().iter().enumerate() {
            let want = &canon.summary[i];
            match term {
                Term::Const(c) => {
                    if c != want {
                        return false;
                    }
                }
                Term::Var(v) => match initial.get(v) {
                    Some(existing) if existing != want => return false,
                    _ => {
                        initial.insert(v.clone(), want.clone());
                    }
                },
            }
        }
        let relations: BTreeMap<String, &Relation> = q2
            .relation_names()
            .into_iter()
            .map(|name| {
                let rel = canon.database.relation(&name).expect("base relations only");
                (name, rel)
            })
            .collect();
        reference::has_homomorphism(q2.atoms(), &relations, &initial)
            .expect("benchmark searches succeed")
    }

    /// Run one case `repeats`× through both engines, asserting agreement.
    pub fn run_case(case: &ContainmentCase, repeats: usize) -> CaseResult {
        let t = Instant::now();
        for _ in 0..repeats {
            let got = reference_cq_contained_in(&case.q1, &case.q2, &case.schema);
            assert_eq!(
                got, case.expected,
                "baseline verdict changed on {}",
                case.name
            );
        }
        let baseline_ms = t.elapsed().as_secs_f64() * 1_000.0;

        let checker = ContainmentChecker::new(&case.schema);
        let t = Instant::now();
        for _ in 0..repeats {
            let got = checker.cq_contained_in(&case.q1, &case.q2).unwrap();
            assert_eq!(got, case.expected, "slot verdict changed on {}", case.name);
        }
        let slot_cached_ms = t.elapsed().as_secs_f64() * 1_000.0;

        CaseResult {
            name: case.name,
            repeats,
            baseline_ms,
            slot_cached_ms,
        }
    }

    /// One cyclic-evaluation case: a query over an adversarial graph where
    /// the atom-at-a-time engine is forced through a quadratic intermediate
    /// result while the generic join stays near-linear.  The baseline is the
    /// PR 1 fixed-order slot engine ([`JoinStrategy::Heuristic`]); the
    /// contender is the cost-based planner ([`JoinStrategy::Auto`], which
    /// picks generic join for these shapes).
    pub struct EvalCase {
        pub name: &'static str,
        pub query: ConjunctiveQuery,
        pub db: Database,
    }

    /// The AGM-style lower-bound instance for the triangle query: a
    /// tripartite graph `A → B → C → A` where one hub node per part is
    /// connected to everything in the next part.  `|E| = 6n`, the triangle
    /// count is `Θ(n)`, but every atom order must enumerate a `Θ(n²)`
    /// intermediate join.  Node encoding: `A = 3i`, `B = 3i+1`, `C = 3i+2`.
    fn agm_graph(n: i64, parts: i64) -> Database {
        let schema = DatabaseSchema::with_relations(&[("e", &["src", "dst"])]).unwrap();
        let mut db = Database::empty(schema);
        let node = |part: i64, i: i64| part + parts * i;
        for part in 0..parts {
            let next = (part + 1) % parts;
            for i in 0..n {
                // Hub of this part reaches everything in the next part, and
                // everything in this part reaches the next part's hub.
                db.insert("e", bqr_data::tuple![node(part, 0), node(next, i)])
                    .unwrap();
                db.insert("e", bqr_data::tuple![node(part, i), node(next, 0)])
                    .unwrap();
            }
        }
        db
    }

    fn k_cycle_query(k: usize) -> ConjunctiveQuery {
        let mut body = String::from("Q() :- ");
        for i in 0..k {
            if i > 0 {
                body.push_str(", ");
            }
            body.push_str(&format!("e(x{i}, x{})", (i + 1) % k));
        }
        parse_cq(&body).unwrap()
    }

    /// A skewed chain instance for the cost-model case: `u` is large, `t` is
    /// tiny, and only a handful of `e`-edges reach `t`.  With no constants
    /// anywhere the PR 1 heuristic scores every atom equally and falls back
    /// to declaration order, starting from the big unary relation and
    /// scanning all of it; the cost-based order ignores declaration order,
    /// starts from `t` and probes backwards, touching a constant number of
    /// tuples.
    fn skewed_chain(n: i64) -> (ConjunctiveQuery, Database) {
        let schema =
            DatabaseSchema::with_relations(&[("u", &["a"]), ("e", &["a", "b"]), ("t", &["b"])])
                .unwrap();
        let mut db = Database::empty(schema);
        for i in 0..n {
            db.insert("u", bqr_data::tuple![i]).unwrap();
            db.insert("e", bqr_data::tuple![i, n + i]).unwrap();
        }
        for i in 0..3i64 {
            db.insert("t", bqr_data::tuple![n + i]).unwrap();
        }
        let query = parse_cq("Q() :- t(y), e(x, y), u(x)").unwrap();
        (query, db)
    }

    /// A skewed even cycle (C4): four relations closing a 4-cycle
    /// `e1 ⋈ e2 ⋈ e3 ⋈ e4`, where `e2` and `e4` fan out `n`-wide from every
    /// hub but only one successor continues the cycle.  Every atom-at-a-time
    /// order meets one of the heavy relations before both cycle-closing
    /// checks are available and wades through a `Θ(k·n)` intermediate; the
    /// degree-aware generic join (PR 3) seeds with the *opposite corners*
    /// `x0` and `x2` — pools of size `k` — and then eliminates `x1`/`x3`
    /// with two bound neighbours each, touching `Θ(k²)` pairs.  This is the
    /// C4 gap ROADMAP recorded from the PR 2 4-cycle experiments: with only
    /// one bound neighbour per level (any connected order), generic join's
    /// intersections never prune.
    fn skewed_c4(k: i64, fanout: i64) -> (ConjunctiveQuery, Database) {
        let schema = DatabaseSchema::with_relations(&[
            ("e1", &["a", "b"]),
            ("e2", &["b", "c"]),
            ("e3", &["c", "d"]),
            ("e4", &["d", "a"]),
        ])
        .unwrap();
        let mut db = Database::empty(schema);
        for i in 0..k {
            let (a, b, c, d) = (i, 1_000_000 + i, 2_000_000 + i, 3_000_000 + i);
            db.insert("e1", bqr_data::tuple![a, b]).unwrap();
            db.insert("e2", bqr_data::tuple![b, c]).unwrap();
            db.insert("e3", bqr_data::tuple![c, d]).unwrap();
            db.insert("e4", bqr_data::tuple![d, a]).unwrap();
            for t in 0..fanout {
                // Dead-end fan-out: c-values absent from e3, a-values absent
                // from e1.
                db.insert("e2", bqr_data::tuple![b, 4_000_000 + i * fanout + t])
                    .unwrap();
                db.insert("e4", bqr_data::tuple![d, 5_000_000 + i * fanout + t])
                    .unwrap();
            }
        }
        let query = parse_cq("Q() :- e1(x0, x1), e2(x1, x2), e3(x2, x3), e4(x3, x0)").unwrap();
        (query, db)
    }

    /// The planner evaluation cases of the `hom` benchmark: the cyclic
    /// (triangle) workload where generic join wins, the skewed 4-cycle where
    /// the PR 3 degree-aware variable order makes even cycles prune, and the
    /// skewed chain where the selectivity cost model wins.
    pub fn eval_cases() -> Vec<EvalCase> {
        let (chain_query, chain_db) = skewed_chain(20_000);
        let (c4_query, c4_db) = skewed_c4(50, 400);
        vec![
            EvalCase {
                name: "triangle_agm_n400",
                query: k_cycle_query(3),
                db: agm_graph(400, 3),
            },
            EvalCase {
                name: "c4_n400",
                query: c4_query,
                db: c4_db,
            },
            EvalCase {
                name: "chain_skew_n20000",
                query: chain_query,
                db: chain_db,
            },
        ]
    }

    /// Run one cyclic case `repeats`× under the fixed-order baseline and the
    /// planner, asserting both produce the same answers.  Warm caches on
    /// both sides: the comparison isolates join strategy, not caching.
    pub fn run_eval_case(case: &EvalCase, repeats: usize) -> CaseResult {
        let fixed =
            Evaluator::new().with_planner(PlannerConfig::with_strategy(JoinStrategy::Heuristic));
        let planned =
            Evaluator::new().with_planner(PlannerConfig::with_strategy(JoinStrategy::Auto));
        let expected = fixed.eval_cq(&case.query, &case.db, None).unwrap();
        assert_eq!(
            expected,
            planned.eval_cq(&case.query, &case.db, None).unwrap(),
            "strategies disagree on {}",
            case.name
        );

        let t = Instant::now();
        for _ in 0..repeats {
            let got = fixed.eval_cq(&case.query, &case.db, None).unwrap();
            assert_eq!(got.len(), expected.len());
        }
        let baseline_ms = t.elapsed().as_secs_f64() * 1_000.0;

        let t = Instant::now();
        for _ in 0..repeats {
            let got = planned.eval_cq(&case.query, &case.db, None).unwrap();
            assert_eq!(got.len(), expected.len());
        }
        let slot_cached_ms = t.elapsed().as_secs_f64() * 1_000.0;

        CaseResult {
            name: case.name,
            repeats,
            baseline_ms,
            slot_cached_ms,
        }
    }

    /// How often each cyclic evaluation case runs in the committed report.
    pub const EVAL_REPEATS: usize = 10;

    /// How often the cold-enumeration case runs in the committed report.
    pub const COLD_REPEATS: usize = 10;

    /// The name of the cold-path guard row in `BENCH_hom.json`.
    pub const COLD_ENUMERATION_CASE: &str = "cold_enumeration_movies";

    /// How much slower than the reference engine a *cold* single-shot slot
    /// enumeration may be before the harness's `hom` mode fails.  The cost
    /// pinned here is the one-time snapshot interning ROADMAP records as the
    /// "known cost" of the slot engine (~2.9–4.0× on the in-container
    /// machine at PR 4); the headroom absorbs run-to-run noise while still
    /// catching a silently growing cold path.
    pub const COLD_ENUMERATION_MAX_RATIO: f64 = 5.0;

    /// The cold-path guard: one-shot homomorphism enumeration over a movies
    /// instance, slot engine vs reference engine, **cold caches on every
    /// call** — nothing retains the interned snapshots between iterations,
    /// so each slot call pays the full per-epoch interning cost that every
    /// repeated workload amortises away.  Reported as `baseline_ms` =
    /// reference engine, `slot_cached_ms` = cold slot engine (so the row's
    /// `speedup` is *below* 1 by design — it is a cost pin, not a win).
    pub fn run_cold_enumeration(repeats: usize) -> CaseResult {
        use bqr_query::hom::{enumerate_homomorphisms, MatchLimit};

        let db = movies::generate(movies::MovieScale {
            persons: 2_000,
            movies: 500,
            n0: 50,
            seed: 11,
        });
        let rels: BTreeMap<String, &Relation> =
            db.relations().map(|r| (r.name().to_string(), r)).collect();
        let atoms = movies::q0().atoms().to_vec();
        let limit = MatchLimit::AtMost(100_000);

        let t = Instant::now();
        let mut reference_matches = 0usize;
        for _ in 0..repeats {
            reference_matches =
                reference::enumerate_homomorphisms(&atoms, &rels, &Assignment::new(), limit)
                    .expect("reference enumeration succeeds")
                    .len();
        }
        let baseline_ms = t.elapsed().as_secs_f64() * 1_000.0;

        let t = Instant::now();
        for _ in 0..repeats {
            let matches = enumerate_homomorphisms(&atoms, &rels, &Assignment::new(), limit)
                .expect("slot enumeration succeeds")
                .len();
            assert_eq!(matches, reference_matches, "engines disagree cold");
        }
        let slot_cached_ms = t.elapsed().as_secs_f64() * 1_000.0;

        CaseResult {
            name: COLD_ENUMERATION_CASE,
            repeats,
            baseline_ms,
            slot_cached_ms,
        }
    }

    /// Run every case and render the machine-readable report committed as
    /// `BENCH_hom.json`.  Containment rows compare the slot engine against
    /// the pre-refactor reference engine; the cyclic `*_agm_*` rows compare
    /// the cost-based planner (generic join) against the PR 1 fixed-order
    /// slot engine; the `cold_enumeration_movies` row pins the cold
    /// single-shot cost (see [`run_cold_enumeration`]).
    pub fn report(repeats: usize) -> (Vec<CaseResult>, String) {
        let mut results: Vec<CaseResult> = cases().iter().map(|c| run_case(c, repeats)).collect();
        results.extend(eval_cases().iter().map(|c| run_eval_case(c, EVAL_REPEATS)));
        results.push(run_cold_enumeration(COLD_REPEATS));
        let mut json = String::from("{\n  \"bench\": \"hom\",\n  \"unit\": \"ms\",\n");
        json.push_str(&format!("  \"repeats\": {repeats},\n  \"cases\": [\n"));
        for (i, r) in results.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"repeats\": {}, \"baseline_ms\": {:.3}, \"slot_cached_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
                r.name,
                r.repeats,
                r.baseline_ms,
                r.slot_cached_ms,
                r.speedup(),
                if i + 1 < results.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        (results, json)
    }
}

/// The `plan` benchmark: the compiled operator pipeline of `bqr-plan::exec`
/// (interned ids, hash joins, id-native fetches) versus the retained
/// tree-walking interpreter (`exec::reference`), on real plan executions —
/// the movies rewriting of Fig. 1's shape, a CDR analytics rewriting, and an
/// AGM-style triangle join over cached views — plus the sharded-parallel
/// scaling rows (`ExecOptions`) on the largest workload.  Shared by
/// `benches/plan.rs` and the harness's `plan` mode, which persists the
/// numbers to `BENCH_plan.json` and fails if the compiled executor is slower
/// than the reference on the movies workload.
pub mod plan_bench {
    use crate::{checker_with_annotations, plan_for, prepare};
    use bqr_data::{Database, DatabaseSchema, IndexedDatabase};
    use bqr_plan::builder::Plan;
    use bqr_plan::exec::{reference, ExecOptions, Pipeline};
    use bqr_plan::QueryPlan;
    use bqr_query::parser::parse_cq;
    use bqr_query::{MaterializedViews, ViewSet};
    use bqr_workload::{cdr, movies};
    use std::time::Instant;

    /// One plan-execution case: a bounded plan plus the runtime objects it
    /// executes against.
    pub struct PlanCase {
        pub name: &'static str,
        pub plan: QueryPlan,
        pub idb: IndexedDatabase,
        pub views: MaterializedViews,
        pub repeats: usize,
    }

    /// The measured result of one case.
    #[derive(Debug, Clone)]
    pub struct PlanCaseResult {
        pub name: &'static str,
        pub repeats: usize,
        /// The tree-walking interpreter (`exec::reference`).
        pub reference_ms: f64,
        /// The compiled pipeline, serial.
        pub compiled_ms: f64,
    }

    impl PlanCaseResult {
        /// Wall-clock improvement factor (reference / compiled).
        pub fn speedup(&self) -> f64 {
            crate::guarded_ratio(self.reference_ms, self.compiled_ms)
        }
    }

    /// One sharded-parallel measurement.
    #[derive(Debug, Clone)]
    pub struct ParallelResult {
        pub name: &'static str,
        pub shards: usize,
        pub ms: f64,
        /// serial-compiled ms / this ms.
        pub scaling: f64,
    }

    /// The AGM-style triangle instance of the `hom` benchmark, exposed as a
    /// *plan* over a cached edge view: `π[x,y,z] σ(join) (E × E × E)`.  The
    /// σ-over-× pattern compiles to two hash joins over a `Θ(n²)`
    /// intermediate — exactly the shape where the interpreter's
    /// `BTreeSet<Tuple>` materialisation is the bottleneck, and the largest
    /// workload for the parallel-scaling rows.
    pub fn triangle_case(n: i64, repeats: usize) -> PlanCase {
        let schema = DatabaseSchema::with_relations(&[("e", &["src", "dst"])]).unwrap();
        let mut db = Database::empty(schema);
        let parts = 3i64;
        let node = |part: i64, i: i64| part + parts * i;
        for part in 0..parts {
            let next = (part + 1) % parts;
            for i in 0..n {
                db.insert("e", bqr_data::tuple![node(part, 0), node(next, i)])
                    .unwrap();
                db.insert("e", bqr_data::tuple![node(part, i), node(next, 0)])
                    .unwrap();
            }
        }
        let mut views = ViewSet::empty();
        views
            .add_cq("E", parse_cq("E(x, y) :- e(x, y)").unwrap())
            .unwrap();
        let cache = views.materialize(&db).unwrap();
        let idb = IndexedDatabase::build(db, bqr_data::AccessSchema::empty()).unwrap();
        // (x, y) ⋈ (y, z) ⋈ (z, x), then project the triangle.
        let plan = Plan::view("E", 2)
            .join_eq(Plan::view("E", 2), &[(1, 0)])
            .join_eq(Plan::view("E", 2), &[(3, 0), (0, 1)])
            .project(vec![0, 1, 3])
            .build()
            .unwrap();
        PlanCase {
            name: "triangle_agm_n400_plan",
            plan,
            idb,
            views: cache,
            repeats,
        }
    }

    /// Movies: the Fig.-1-shaped rewriting generated by the topped checker,
    /// over an 8k-person instance.
    fn movies_case() -> PlanCase {
        let setting = movies::setting(100, 40);
        let checker = checker_with_annotations(&setting, &[]);
        let analysis = plan_for(&checker, &movies::q_xi());
        let db = movies::generate(movies::MovieScale {
            persons: 8_000,
            movies: 2_000,
            n0: 100,
            seed: 1,
        });
        let (idb, cache) = prepare(&setting, db);
        PlanCase {
            name: "movies_qxi_8k",
            plan: analysis.plan.expect("movies rewriting is topped"),
            idb,
            views: cache,
            repeats: 100,
        }
    }

    /// The plan-execution cases.
    pub fn cases() -> Vec<PlanCase> {
        let mut out = Vec::new();
        out.push(movies_case());
        // CDR: the heaviest topped template of the analytics workload over
        // a 10k-customer instance (the workload's cheap point lookups
        // execute in microseconds either way; the heavy template is where
        // an executor matters).
        let scale = cdr::CdrScale {
            customers: 10_000,
            days: 14,
            ..cdr::CdrScale::default()
        };
        let setting = cdr::setting(&scale, 120);
        let checker = checker_with_annotations(&setting, &cdr::view_bounds());
        let (idb, cache) = prepare(&setting, cdr::generate(scale));
        let plan = cdr::workload(17, 3)
            .iter()
            .filter_map(|q| {
                let analysis = checker.analyze_cq(&q.query).ok()?;
                analysis.topped.then_some(analysis.plan).flatten()
            })
            .max_by_key(|plan| {
                // "Heaviest" by data touched, not wall clock: tuples read
                // from views plus base tuples fetched is a deterministic
                // proxy for executor work, so the committed row always
                // compares the same plan across runs and machines.
                let out = reference::execute(plan, &idb, &cache).unwrap();
                (
                    out.stats.view_tuples + out.stats.base_tuples_accessed(),
                    plan.size(),
                )
            })
            .expect("the CDR workload has topped templates");
        out.push(PlanCase {
            name: "cdr_heaviest_topped_10k",
            plan,
            idb,
            views: cache,
            repeats: 100,
        });
        out.push(triangle_case(400, 5));
        out
    }

    /// Run one case under both executors, asserting identical answers *and*
    /// identical `FetchStats`.  The pipeline is compiled once and executed
    /// `repeats` times — the designed usage (compile once, run many), and
    /// the shape of a serving workload.
    pub fn run_case(case: &PlanCase) -> PlanCaseResult {
        let serial = ExecOptions::serial();
        let expected = reference::execute(&case.plan, &case.idb, &case.views).unwrap();
        let pipeline = Pipeline::compile(&case.plan, &case.idb, &case.views).unwrap();
        let compiled = pipeline.execute(&case.idb, &serial).unwrap();
        assert_eq!(expected, compiled, "executors disagree on {}", case.name);

        let t = Instant::now();
        for _ in 0..case.repeats {
            let out = reference::execute(&case.plan, &case.idb, &case.views).unwrap();
            assert_eq!(out.tuples.len(), expected.tuples.len());
        }
        let reference_ms = t.elapsed().as_secs_f64() * 1_000.0;

        let t = Instant::now();
        for _ in 0..case.repeats {
            let out = pipeline.execute(&case.idb, &serial).unwrap();
            assert_eq!(out.tuples.len(), expected.tuples.len());
        }
        let compiled_ms = t.elapsed().as_secs_f64() * 1_000.0;

        PlanCaseResult {
            name: case.name,
            repeats: case.repeats,
            reference_ms,
            compiled_ms,
        }
    }

    /// Run one case under `ExecOptions::parallel(shards)` through a
    /// caller-compiled `pipeline`, asserting the output (tuples and stats)
    /// is bit-identical to the caller's serial `expected` output.
    pub fn run_parallel(
        case: &PlanCase,
        pipeline: &Pipeline,
        expected: &bqr_plan::ExecOutput,
        shards: usize,
        serial_ms: f64,
    ) -> ParallelResult {
        let options = ExecOptions::parallel(shards);
        let got = pipeline.execute(&case.idb, &options).unwrap();
        assert_eq!(expected, &got, "parallel run diverged on {}", case.name);

        let t = Instant::now();
        for _ in 0..case.repeats {
            let out = pipeline.execute(&case.idb, &options).unwrap();
            assert_eq!(out.tuples.len(), expected.tuples.len());
        }
        let ms = t.elapsed().as_secs_f64() * 1_000.0;
        ParallelResult {
            name: case.name,
            shards,
            ms,
            scaling: crate::guarded_ratio(serial_ms, ms),
        }
    }

    /// The guard-overhead comparison on the movies workload: the same
    /// compiled pipeline executed with runtime limits disabled vs enforced
    /// (ample enough never to trip), so the ratio isolates the cost of the
    /// guard checkpoints themselves.
    #[derive(Debug, Clone)]
    pub struct GuardOverhead {
        pub name: &'static str,
        pub repeats: usize,
        /// ms per batch with [`bqr_plan::GuardLimits::none`] (the default).
        pub disabled_ms: f64,
        /// ms per batch with a deadline, row budget and fetch cap enforced.
        pub enabled_ms: f64,
    }

    impl GuardOverhead {
        /// enabled / disabled — how much the guardrails cost.
        pub fn ratio(&self) -> f64 {
            crate::guarded_ratio(self.enabled_ms, self.disabled_ms)
        }
    }

    /// The threshold the harness enforces: guarded execution of the movies
    /// workload must stay within 5% of unguarded execution.
    pub const GUARD_MAX_OVERHEAD: f64 = 1.05;

    /// The committed `movies_qxi_8k` time of the row-at-a-time executor this
    /// repo shipped before the vectorised kernels (ms per `repeats`-batch of
    /// 100, from `BENCH_plan.json` at that commit).  The baseline of the
    /// vectorisation gate below — a fixed number, not a re-measurement, so
    /// the gate cannot drift with the code it checks.
    pub const ROW_AT_A_TIME_MOVIES_MS: f64 = 11.8;

    /// The vectorisation gate the harness enforces: the batch-kernel
    /// executor must beat [`ROW_AT_A_TIME_MOVIES_MS`] on `movies_qxi_8k` by
    /// at least this factor, or the `plan` mode exits non-zero.
    pub const VECTORISED_MIN_SPEEDUP: f64 = 1.2;

    /// Measure [`GuardOverhead`] on `movies_qxi_8k`.  Both configurations
    /// are run in alternating rounds and the best batch per configuration is
    /// kept, so scheduler noise cannot charge one side only.
    pub fn run_guard_overhead() -> GuardOverhead {
        let case = movies_case();
        let pipeline = Pipeline::compile(&case.plan, &case.idb, &case.views).unwrap();
        let disabled = ExecOptions::serial();
        let enabled = ExecOptions::serial()
            .with_deadline_ms(3_600_000)
            .with_row_budget(usize::MAX / 2)
            .with_fetch_budget(usize::MAX / 2);
        let expected = pipeline.execute(&case.idb, &disabled).unwrap();
        assert_eq!(
            pipeline.execute(&case.idb, &enabled).unwrap(),
            expected,
            "guards must never change the answer"
        );
        let mut best = [f64::INFINITY; 2];
        for _round in 0..3 {
            for (slot, options) in [(0usize, &disabled), (1, &enabled)] {
                let t = Instant::now();
                for _ in 0..case.repeats {
                    let out = pipeline.execute(&case.idb, options).unwrap();
                    assert_eq!(out.tuples.len(), expected.tuples.len());
                }
                let ms = t.elapsed().as_secs_f64() * 1_000.0;
                if ms < best[slot] {
                    best[slot] = ms;
                }
            }
        }
        GuardOverhead {
            name: case.name,
            repeats: case.repeats,
            disabled_ms: best[0],
            enabled_ms: best[1],
        }
    }

    /// Deterministically trip each guard class once through the
    /// [`bqr_engine::Engine`] facade and snapshot the per-engine counters —
    /// the committed report pins the counter wiring, not a timing.
    pub fn guard_stats_exercise() -> bqr_plan::GuardStats {
        use bqr_plan::{CancellationToken, ExecError};

        let engine = bqr_engine::Engine::builder()
            .setting(movies::setting(100, 40))
            .build()
            .expect("movies engine builds");
        let db = movies::generate(movies::MovieScale {
            persons: 100,
            movies: 50,
            n0: 100,
            seed: 3,
        });
        engine.attach(db).expect("attach");
        engine.prepare("fig1", movies::q_xi()).expect("prepare");
        let session = engine.session();

        let expect_trip = |options: &ExecOptions, want: fn(&ExecError) -> bool| {
            let err = session.execute_with("fig1", options).unwrap_err();
            assert!(err.exec_error().is_some_and(want), "{err:?}");
        };
        expect_trip(&ExecOptions::serial().with_deadline_ms(0), |e| {
            matches!(e, ExecError::DeadlineExceeded { .. })
        });
        expect_trip(&ExecOptions::serial().with_row_budget(0), |e| {
            matches!(e, ExecError::MemoryBudgetExceeded { .. })
        });
        expect_trip(&ExecOptions::serial().with_fetch_budget(0), |e| {
            matches!(e, ExecError::FetchBudgetExceeded { .. })
        });
        let token = CancellationToken::new();
        token.cancel();
        let err = session
            .execute_with_token("fig1", &ExecOptions::serial(), token)
            .unwrap_err();
        assert!(err.exec_error() == Some(&ExecError::Cancelled), "{err:?}");
        // And one clean execution: trips never wedge the statement.
        session.execute("fig1").expect("statement still serves");
        engine.guard_stats()
    }

    /// One prepared-execution case: a plan plus a `rebuild` closure that
    /// loads a *fresh* instance (fresh relation epochs, cold snapshots and
    /// constraint indexes) — the serving-process shape: data loads cold,
    /// then the same prepared statement is executed over and over.
    pub struct PreparedCase {
        pub name: &'static str,
        pub plan: QueryPlan,
        /// Load a content-identical instance with fresh epochs.
        #[allow(clippy::type_complexity)]
        pub rebuild: Box<dyn Fn() -> (IndexedDatabase, MaterializedViews)>,
        /// How many cold rounds (each on a freshly loaded instance).
        pub cold_rounds: usize,
        /// How many warm (cache-hit) executions on the last instance.
        pub warm_repeats: usize,
    }

    /// The measured result of one prepared case.
    #[derive(Debug, Clone)]
    pub struct PreparedResult {
        pub name: &'static str,
        pub cold_rounds: usize,
        pub warm_repeats: usize,
        /// Milliseconds per *cold* prepared execution: first execution on a
        /// freshly loaded instance — pipeline compile, snapshot interning,
        /// lazy constraint-index interning, then the run itself.
        pub cold_ms: f64,
        /// Milliseconds per *warm* prepared execution: pipeline-cache hit,
        /// run only.
        pub warm_ms: f64,
        /// The pipeline cache's counters at the end of the run, so bench
        /// output shows the cache behaviour behind the timings (every cold
        /// round is a miss, every warm repeat a hit, and each fresh-epoch
        /// reload invalidates its predecessor's entry).
        pub cache: bqr_plan::CacheStats,
    }

    impl PreparedResult {
        /// cold / warm — how much a cache hit saves over a cold start.
        pub fn speedup(&self) -> f64 {
            crate::guarded_ratio(self.cold_ms, self.warm_ms)
        }
    }

    /// The threshold the harness enforces on the movies workload: a warm
    /// cache-hit execution must be at least this much faster than a cold
    /// compile+exec, or the `plan` mode exits non-zero.
    pub const PREPARED_MIN_SPEEDUP: f64 = 3.0;

    /// The prepared-execution cases: the same three workloads as the
    /// executor rows, served through a [`bqr_plan::PreparedPlan`].
    pub fn prepared_cases() -> Vec<PreparedCase> {
        prepared_cases_with(None)
    }

    /// [`prepared_cases`] with the CDR heaviest-template plan supplied by the
    /// caller — [`report`] passes the plan it already selected while building
    /// [`cases`], so the expensive selection (generate the 10k-customer
    /// instance, reference-execute every topped template) runs once per
    /// report, not twice.
    fn prepared_cases_with(cdr_plan: Option<QueryPlan>) -> Vec<PreparedCase> {
        let mut out = Vec::new();

        // Movies: the Fig.-1-shaped rewriting over the 8k-person instance.
        let setting = movies::setting(100, 40);
        let checker = checker_with_annotations(&setting, &[]);
        let plan = plan_for(&checker, &movies::q_xi())
            .plan
            .expect("movies rewriting is topped");
        out.push(PreparedCase {
            name: "movies_qxi_8k",
            plan,
            rebuild: Box::new(move || {
                let db = movies::generate(movies::MovieScale {
                    persons: 8_000,
                    movies: 2_000,
                    n0: 100,
                    seed: 1,
                });
                prepare(&setting, db)
            }),
            cold_rounds: 3,
            warm_repeats: 100,
        });

        // CDR: the heaviest topped template — reused from the caller when it
        // already selected one, otherwise picked here (deterministically,
        // exactly as in `cases()`).
        let scale = cdr::CdrScale {
            customers: 10_000,
            days: 14,
            ..cdr::CdrScale::default()
        };
        let setting = cdr::setting(&scale, 120);
        let plan = cdr_plan.unwrap_or_else(|| {
            let checker = checker_with_annotations(&setting, &cdr::view_bounds());
            let (idb, cache) = prepare(&setting, cdr::generate(scale));
            cdr::workload(17, 3)
                .iter()
                .filter_map(|q| {
                    let analysis = checker.analyze_cq(&q.query).ok()?;
                    analysis.topped.then_some(analysis.plan).flatten()
                })
                .max_by_key(|plan| {
                    let out = reference::execute(plan, &idb, &cache).unwrap();
                    (
                        out.stats.view_tuples + out.stats.base_tuples_accessed(),
                        plan.size(),
                    )
                })
                .expect("the CDR workload has topped templates")
        });
        out.push(PreparedCase {
            name: "cdr_heaviest_topped_10k",
            plan,
            rebuild: Box::new(move || prepare(&setting, cdr::generate(scale))),
            cold_rounds: 2,
            warm_repeats: 100,
        });

        // AGM triangle over the cached edge view.  This case runs a Θ(n²)
        // join either way, so cold and warm are close and noisy; the warm
        // loop needs enough repeats for the best-of-batches minimum below to
        // stabilise (5 repeats once produced a warm mean *slower* than cold
        // — pure scheduler noise, not a cache problem).
        let triangle = triangle_case(400, 0);
        out.push(PreparedCase {
            name: "triangle_agm_n400_plan",
            plan: triangle.plan,
            rebuild: Box::new(|| {
                let c = triangle_case(400, 0);
                (c.idb, c.views)
            }),
            cold_rounds: 3,
            warm_repeats: 20,
        });
        out
    }

    /// How many timed warm batches [`run_prepared`] runs; the fastest batch
    /// is reported.  Warm executions are pure cache hits, so their true cost
    /// is the *minimum* — any excess over it is scheduler noise, which a
    /// single mean happily books against the warm side (the source of a
    /// nonsense warm-slower-than-cold row this report once committed).
    pub const WARM_BATCHES: usize = 3;

    /// Run one prepared case: `cold_rounds` first-executions on freshly
    /// loaded instances (each verified against the reference interpreter,
    /// each a cache miss by construction — fresh epochs), then
    /// `warm_repeats` cache-hit executions on the last instance.  The
    /// cache counters are asserted, so "warm" provably means *no
    /// recompilation*.
    pub fn run_prepared(case: &PreparedCase) -> PreparedResult {
        use bqr_plan::{PipelineCache, PreparedPlan};
        use std::sync::Arc;

        let cache = Arc::new(PipelineCache::new(16));
        let prepared = PreparedPlan::with_cache(case.plan.clone(), Arc::clone(&cache));
        let mut cold_total_ms = 0.0;
        let mut last: Option<(IndexedDatabase, MaterializedViews, bqr_plan::ExecOutput)> = None;
        for _ in 0..case.cold_rounds {
            let (idb, views) = (case.rebuild)();
            let t = Instant::now();
            let out = prepared.execute(&idb, &views).expect("prepared execution");
            cold_total_ms += t.elapsed().as_secs_f64() * 1_000.0;
            let oracle = reference::execute(&case.plan, &idb, &views).unwrap();
            assert_eq!(out, oracle, "cold prepared run diverged on {}", case.name);
            last = Some((idb, views, out));
        }
        let (idb, views, expected) = last.expect("at least one cold round");
        assert_eq!(
            cache.stats().misses,
            case.cold_rounds as u64,
            "every cold round must miss (fresh epochs) on {}",
            case.name
        );

        // Timed warm loop: cardinality check only, mirroring the cold rounds
        // (which verify against the oracle *outside* their timer), so the
        // cold/warm comparison is symmetric.  [`WARM_BATCHES`] batches, best
        // batch kept — the same noise discipline as `run_guard_overhead`.
        let mut warm_best_ms = f64::INFINITY;
        for _ in 0..WARM_BATCHES {
            let t = Instant::now();
            for _ in 0..case.warm_repeats {
                let out = prepared.execute(&idb, &views).expect("warm execution");
                assert_eq!(out.tuples.len(), expected.tuples.len());
            }
            let ms = t.elapsed().as_secs_f64() * 1_000.0;
            if ms < warm_best_ms {
                warm_best_ms = ms;
            }
        }
        // One more warm execution, fully verified (tuples and stats) outside
        // the timer: a warm hit serving the wrong pipeline must fail the
        // benchmark, not just skew it.
        let verify = prepared.execute(&idb, &views).expect("warm verification");
        assert_eq!(verify, expected, "warm run diverged on {}", case.name);
        let stats = cache.stats();
        assert_eq!(
            stats.hits,
            (WARM_BATCHES * case.warm_repeats) as u64 + 1,
            "every warm repeat (and the verification) must hit the pipeline cache on {}",
            case.name
        );
        assert_eq!(stats.lookups, stats.hits + stats.misses);

        PreparedResult {
            name: case.name,
            cold_rounds: case.cold_rounds,
            warm_repeats: case.warm_repeats,
            cold_ms: cold_total_ms / case.cold_rounds as f64,
            warm_ms: warm_best_ms / case.warm_repeats as f64,
            cache: stats,
        }
    }

    /// One write-path row: the same single-tuple inserts committed through
    /// delta maintenance ([`bqr_engine::MaintenanceMode::Delta`]) and through
    /// a from-scratch version rebuild ([`bqr_engine::MaintenanceMode::Rebuild`]),
    /// with the two engines verified bit-identical afterwards.
    #[derive(Debug, Clone)]
    pub struct WritePathResult {
        pub name: &'static str,
        /// Timed single-tuple mutations per engine.
        pub repeats: usize,
        /// Milliseconds per mutation through delta maintenance.
        pub delta_ms: f64,
        /// Milliseconds per mutation through a full version rebuild.
        pub rebuild_ms: f64,
    }

    impl WritePathResult {
        /// rebuild / delta — how much delta maintenance saves per write.
        pub fn speedup(&self) -> f64 {
            crate::guarded_ratio(self.rebuild_ms, self.delta_ms)
        }
    }

    /// The threshold the harness enforces on both write-path workloads: a
    /// delta-maintained single-tuple insert must be at least this much
    /// faster than rebuilding the version from scratch, or the `plan` mode
    /// exits non-zero.
    pub const WRITE_MIN_SPEEDUP: f64 = 5.0;

    /// Absolute ceiling the harness enforces on the CDR write row
    /// (`cdr_insert_premium_10k`): one delta-maintained single-tuple insert
    /// must commit within this many milliseconds.  The relative
    /// [`WRITE_MIN_SPEEDUP`] gate alone cannot catch a regression that slows
    /// delta and rebuild alike (e.g. an accidental `O(|D|)` re-interning on
    /// the write path) — this pins the absolute cost of a write.
    pub const CDR_WRITE_MAX_MS: f64 = 8.0;

    /// Time `inserts` through both maintenance modes and verify the engines
    /// agree bit-identically (database, every view extent, and the served
    /// answers of the prepared statement) once the clocks stop.
    fn run_write_case(
        name: &'static str,
        mk_engine: &dyn Fn(bqr_engine::MaintenanceMode) -> bqr_engine::Engine,
        statement: &bqr_query::ConjunctiveQuery,
        inserts: &[(&'static str, bqr_data::Tuple)],
    ) -> WritePathResult {
        use bqr_engine::MaintenanceMode;

        let build = |mode| {
            let engine = mk_engine(mode);
            engine
                .prepare("w", statement.clone())
                .expect("write-path statement is topped");
            engine.execute("w").expect("warm serve");
            engine
        };
        // Build, warm up, and time each engine to completion before touching
        // the next one: a full-rebuild warmup churns through hundreds of
        // megabytes, and interleaving it with the other engine's timed
        // section shows up as a one-off page-fault spike in *that* engine's
        // first timed mutation.  The warmup mutation (same tuple on both
        // modes) takes the first-write copy-on-write fork and lazy interning
        // off the clock.
        let (rel, warm) = &inserts[0];
        let timed = &inserts[1..];
        let mut ms = [0.0f64; 2];
        let mut engines = Vec::new();
        for (slot, mode) in [MaintenanceMode::Delta, MaintenanceMode::Rebuild]
            .into_iter()
            .enumerate()
        {
            let engine = build(mode);
            engine
                .mutate(|db| db.insert(rel, warm.clone()).map(drop))
                .expect("warmup insert");
            let t = Instant::now();
            for (rel, tuple) in timed {
                engine
                    .mutate(|db| db.insert(rel, tuple.clone()).map(drop))
                    .expect("timed insert");
            }
            ms[slot] = t.elapsed().as_secs_f64() * 1_000.0 / timed.len() as f64;
            engines.push(engine);
        }
        let (delta, rebuild) = (&engines[0], &engines[1]);

        // Divergence gate: a fast delta path that drifts from the rebuild
        // baseline must fail the benchmark, not report a win.
        let a = delta.session();
        let b = rebuild.session();
        assert_eq!(a.database(), b.database(), "{name}: databases diverged");
        for view in a.views().names() {
            assert_eq!(
                a.views().extent(view),
                b.views().extent(view),
                "{name}: view extent `{view}` diverged"
            );
        }
        assert_eq!(
            a.execute("w").expect("delta serve"),
            b.execute("w").expect("rebuild serve"),
            "{name}: served answers diverged"
        );

        WritePathResult {
            name,
            repeats: timed.len(),
            delta_ms: ms[0],
            rebuild_ms: ms[1],
        }
    }

    /// The write-path rows: a single-tuple insert into the 8k-person movies
    /// instance and into the 10k-customer CDR instance, delta vs rebuild.
    pub fn run_write_path() -> Vec<WritePathResult> {
        use bqr_engine::Engine;

        let mut out = Vec::new();

        // Movies: insert one fresh rating per mutation.  Touches the
        // `rating` constraint index (patched in place) and leaves `V1`
        // untouched — its extent and epoch are shared into the new version.
        let setting = movies::setting(100, 40);
        let db = movies::generate(movies::MovieScale {
            persons: 8_000,
            movies: 2_000,
            n0: 100,
            seed: 1,
        });
        let inserts: Vec<(&'static str, bqr_data::Tuple)> = (0..21)
            .map(|i| ("rating", bqr_data::tuple![900_000 + i as i64, 1]))
            .collect();
        out.push(run_write_case(
            "movies_insert_rating_8k",
            &move |mode| {
                let engine = Engine::builder()
                    .setting(setting.clone())
                    .cache_capacity(16)
                    .maintenance(mode)
                    .build()
                    .expect("movies engine");
                engine.attach(db.clone()).expect("attach movies");
                engine
            },
            &movies::q_xi(),
            &inserts,
        ));

        // CDR: insert one fresh premium customer per mutation.  Touches the
        // `customer` key index *and* the `V_premium` view, so the row times
        // semi-naive view maintenance too, not just index patching.
        let scale = cdr::CdrScale {
            customers: 10_000,
            days: 14,
            ..cdr::CdrScale::default()
        };
        let setting = cdr::setting(&scale, 120);
        let db = cdr::generate(scale);
        let statement = cdr::workload(17, 3)
            .into_iter()
            .find(|q| q.name == "premium_callees")
            .expect("CDR workload has the premium_callees template")
            .query;
        let inserts: Vec<(&'static str, bqr_data::Tuple)> = (0..11)
            .map(|i| {
                let cid = 1_000_000 + i as i64;
                (
                    "customer",
                    bqr_data::tuple![cid, format!("w{i}"), "premium", "north"],
                )
            })
            .collect();
        out.push(run_write_case(
            "cdr_insert_premium_10k",
            &move |mode| {
                let mut builder = Engine::builder()
                    .setting(setting.clone())
                    .cache_capacity(16)
                    .maintenance(mode);
                for (view, bound) in cdr::view_bounds() {
                    builder = builder.annotate_view_bound(view, bound);
                }
                let engine = builder.build().expect("CDR engine");
                engine.attach(db.clone()).expect("attach CDR");
                engine
            },
            &statement,
            &inserts,
        ));
        out
    }

    /// Run every case (serial comparison, 1/2/4-shard parallel rows on the
    /// largest workload, the prepared cold-vs-warm rows, the write-path
    /// delta-vs-rebuild rows, and the guard-overhead comparison plus counter
    /// exercise) and render the machine-readable report committed as
    /// `BENCH_plan.json`.
    #[allow(clippy::type_complexity)]
    pub fn report() -> (
        Vec<PlanCaseResult>,
        Vec<ParallelResult>,
        Vec<PreparedResult>,
        Vec<WritePathResult>,
        GuardOverhead,
        bqr_plan::GuardStats,
        String,
    ) {
        let cases = cases();
        let results: Vec<PlanCaseResult> = cases.iter().map(run_case).collect();
        let largest = cases
            .iter()
            .find(|c| c.name == "triangle_agm_n400_plan")
            .expect("the triangle case is the scaling workload");
        let serial_ms = results
            .iter()
            .find(|r| r.name == largest.name)
            .unwrap()
            .compiled_ms;
        let pipeline = Pipeline::compile(&largest.plan, &largest.idb, &largest.views).unwrap();
        let expected = pipeline
            .execute(&largest.idb, &ExecOptions::serial())
            .unwrap();
        let parallel: Vec<ParallelResult> = [1usize, 2, 4]
            .iter()
            .map(|&s| run_parallel(largest, &pipeline, &expected, s, serial_ms))
            .collect();

        // Parallel scaling is bounded by the machine: record how many
        // threads were actually available so flat rows on a single-core
        // container read as a hardware limit, not an engine regression.
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mut json = format!(
            "{{\n  \"bench\": \"plan\",\n  \"unit\": \"ms\",\n  \"threads_available\": {threads},\n  \"cases\": [\n"
        );
        for (i, r) in results.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"repeats\": {}, \"reference_ms\": {:.3}, \"compiled_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
                r.name,
                r.repeats,
                r.reference_ms,
                r.compiled_ms,
                r.speedup(),
                if i + 1 < results.len() { "," } else { "" }
            ));
        }
        json.push_str("  ],\n  \"parallel\": [\n");
        for (i, p) in parallel.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"shards\": {}, \"ms\": {:.3}, \"scaling\": {:.2}}}{}\n",
                p.name,
                p.shards,
                p.ms,
                p.scaling,
                if i + 1 < parallel.len() { "," } else { "" }
            ));
        }
        // Reuse the CDR heaviest-template plan `cases()` already selected,
        // so the expensive selection pass does not run a second time.
        let cdr_plan = cases
            .iter()
            .find(|c| c.name == "cdr_heaviest_topped_10k")
            .map(|c| c.plan.clone());
        let prepared: Vec<PreparedResult> = prepared_cases_with(cdr_plan)
            .iter()
            .map(run_prepared)
            .collect();
        json.push_str("  ],\n  \"prepared\": [\n");
        for (i, p) in prepared.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"cold_rounds\": {}, \"warm_repeats\": {}, \"cold_ms\": {:.3}, \"warm_ms\": {:.4}, \"speedup\": {:.1}, \"cache\": {{\"hits\": {}, \"misses\": {}, \"invalidations\": {}}}}}{}\n",
                p.name,
                p.cold_rounds,
                p.warm_repeats,
                p.cold_ms,
                p.warm_ms,
                p.speedup(),
                p.cache.hits,
                p.cache.misses,
                p.cache.invalidations,
                if i + 1 < prepared.len() { "," } else { "" }
            ));
        }
        let write_path = run_write_path();
        json.push_str("  ],\n  \"write_path\": [\n");
        for (i, w) in write_path.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"repeats\": {}, \"delta_ms\": {:.3}, \"rebuild_ms\": {:.3}, \"speedup\": {:.1}, \"min_speedup\": {:.1}}}{}\n",
                w.name,
                w.repeats,
                w.delta_ms,
                w.rebuild_ms,
                w.speedup(),
                WRITE_MIN_SPEEDUP,
                if i + 1 < write_path.len() { "," } else { "" }
            ));
        }
        let overhead = run_guard_overhead();
        let guard_stats = guard_stats_exercise();
        json.push_str(&format!(
            "  ],\n  \"guard\": {{\n    \"overhead\": {{\"name\": \"{}\", \"repeats\": {}, \"disabled_ms\": {:.3}, \"enabled_ms\": {:.3}, \"ratio\": {:.3}, \"max_ratio\": {:.2}}},\n    \"stats_exercise\": {{\"cancellations\": {}, \"deadline_trips\": {}, \"memory_trips\": {}, \"fetch_trips\": {}, \"panics_contained\": {}, \"serial_fallbacks\": {}}}\n  }}\n}}\n",
            overhead.name,
            overhead.repeats,
            overhead.disabled_ms,
            overhead.enabled_ms,
            overhead.ratio(),
            GUARD_MAX_OVERHEAD,
            guard_stats.cancellations,
            guard_stats.deadline_trips,
            guard_stats.memory_trips,
            guard_stats.fetch_trips,
            guard_stats.panics_contained,
            guard_stats.serial_fallbacks,
        ));
        (
            results,
            parallel,
            prepared,
            write_path,
            overhead,
            guard_stats,
            json,
        )
    }
}

/// The `serve` benchmark: a closed-loop traffic harness over
/// [`bqr_server::Server`] — N client threads each submit a request, wait for
/// its answer, and immediately submit the next, so the offered load adapts to
/// the server's service rate (the serving-systems methodology that avoids
/// coordinated omission by construction: every request's latency is
/// measured, and a slow server simply completes fewer requests).  Three
/// committed workloads (movies read-heavy, CDR read-heavy, CDR mixed
/// read/write) report p50/p99/max latency and throughput, plus a CDR write
/// burst comparing [`Engine::mutate_batch`](bqr_engine::Engine::mutate_batch)
/// against serial [`Engine::mutate`](bqr_engine::Engine::mutate) calls.
/// Shared by the harness's `serve` mode, which persists `BENCH_serve.json`
/// and gates the warm-read tail ratio and the batched-write speedup.
pub mod serve_bench {
    use bqr_engine::Engine;
    use bqr_server::{Pending, Server, ServerConfig};
    use bqr_workload::{cdr, movies};
    use std::time::{Duration, Instant};

    /// A write issued by a closed-loop client: `(server, client, round)` →
    /// the pending acknowledgement.
    type WriteFn = Box<dyn Fn(&Server, usize, usize) -> Pending<()> + Send + Sync>;

    /// One closed-loop serving workload.
    pub struct ServeCase {
        pub name: &'static str,
        pub server: Server,
        /// Prepared statement names the clients round-robin over.
        pub reads: Vec<&'static str>,
        pub clients: usize,
        pub iters_per_client: usize,
        /// Every `write_every`-th request per client is a write
        /// (`0` = read-only).
        pub write_every: usize,
        write: Option<WriteFn>,
        /// Whether the harness's p99 ≤ ratio·p50 tail gate applies (it does
        /// for the warm prepared read-only rows; a mixed row's tail includes
        /// write publishes and is recorded but not gated).
        pub gated: bool,
    }

    /// The measured result of one closed-loop workload.
    #[derive(Debug, Clone)]
    pub struct ServeResult {
        pub name: &'static str,
        pub clients: usize,
        /// Requests fulfilled (`= clients × iters`, asserted: a closed loop
        /// under the default admission limits never rejects or drops).
        pub requests: u64,
        pub writes: u64,
        pub coalesced_reads: u64,
        pub elapsed_ms: f64,
        pub throughput_rps: f64,
        pub p50_us: u64,
        pub p99_us: u64,
        pub max_us: u64,
        pub gated: bool,
    }

    impl ServeResult {
        /// p99 / p50 — the latency tail the harness gates on read-only rows.
        pub fn tail_ratio(&self) -> f64 {
            crate::guarded_ratio(self.p99_us as f64, self.p50_us as f64)
        }
    }

    /// The tail gate the harness enforces on the warm prepared read-only
    /// rows: p99 latency may not exceed this multiple of p50.  Coalesced
    /// reads all sleep the same batch window, so the tail isolates
    /// scheduling and flush outliers — a fairness or lost-wakeup bug in the
    /// serving front shows up here as an unbounded tail.
    pub const SERVE_P99_MAX_RATIO: f64 = 10.0;

    /// The write-burst gate: committing a burst through
    /// [`Engine::mutate_batch`](bqr_engine::Engine::mutate_batch) (one
    /// delta-tracked publish) must be at least this much faster than the
    /// same closures through serial `mutate` calls (one publish each).
    pub const BATCHED_WRITE_MIN_SPEEDUP: f64 = 2.0;

    /// Scale knobs, so the committed rows and the reduced debug-mode tests
    /// share one code path.
    pub struct ServeScale {
        pub movies_persons: usize,
        pub cdr_customers: usize,
        pub cdr_days: usize,
        pub clients: usize,
        pub iters_per_client: usize,
        pub batch_window: Duration,
    }

    /// The committed scale: 8 closed-loop clients per row, a 1 ms coalescing
    /// window (latency floor ≈ the window; the p99 gate then budgets tail
    /// outliers at 10 ms even on the single-core container).
    pub fn committed_scale() -> ServeScale {
        ServeScale {
            movies_persons: 8_000,
            cdr_customers: 10_000,
            cdr_days: 14,
            clients: 8,
            iters_per_client: 100,
            batch_window: Duration::from_millis(1),
        }
    }

    /// A reduced scale for debug-mode tests.
    pub fn reduced_scale() -> ServeScale {
        ServeScale {
            movies_persons: 500,
            cdr_customers: 400,
            cdr_days: 3,
            clients: 2,
            iters_per_client: 6,
            batch_window: Duration::from_micros(100),
        }
    }

    fn serve_config(scale: &ServeScale) -> ServerConfig {
        ServerConfig {
            batch_window: scale.batch_window,
            workers: 2,
            ..ServerConfig::default()
        }
    }

    fn cdr_engine(scale: &ServeScale, db: &bqr_data::Database) -> Engine {
        let setting = cdr::setting(
            &cdr::CdrScale {
                customers: scale.cdr_customers,
                days: scale.cdr_days,
                ..cdr::CdrScale::default()
            },
            120,
        );
        let mut builder = Engine::builder().setting(setting).cache_capacity(16);
        for (view, bound) in cdr::view_bounds() {
            builder = builder.annotate_view_bound(view, bound);
        }
        let engine = builder.build().expect("CDR engine builds");
        engine.attach(db.clone()).expect("attach CDR");
        engine
    }

    /// Prepare every topped CDR template on `server`; returns their names.
    fn prepare_cdr_reads(server: &Server) -> Vec<&'static str> {
        let reads: Vec<&'static str> = cdr::workload(17, 3)
            .into_iter()
            .filter(|q| server.prepare(q.name, q.query.clone()).is_ok())
            .map(|q| q.name)
            .collect();
        assert!(
            reads.len() >= 3,
            "the CDR workload must contribute at least 3 topped templates"
        );
        reads
    }

    /// The closed-loop workloads at the given scale.
    pub fn cases_with(scale: &ServeScale) -> Vec<ServeCase> {
        let mut out = Vec::new();

        // Movies read-heavy: every client hammers the Fig. 1 rewriting, so
        // all concurrent requests coalesce into shared flushes.
        let engine = Engine::builder()
            .setting(movies::setting(100, 40))
            .cache_capacity(16)
            .build()
            .expect("movies engine builds");
        engine
            .attach(movies::generate(movies::MovieScale {
                persons: scale.movies_persons,
                movies: (scale.movies_persons / 4).max(50),
                n0: 100,
                seed: 1,
            }))
            .expect("attach movies");
        let server = Server::with_config(engine, serve_config(scale));
        server
            .prepare("fig1", movies::q_xi())
            .expect("movies rewriting is topped");
        out.push(ServeCase {
            name: "movies_read_heavy",
            server,
            reads: vec!["fig1"],
            clients: scale.clients,
            iters_per_client: scale.iters_per_client,
            write_every: 0,
            write: None,
            gated: true,
        });

        // CDR: one generated instance feeds both the read-heavy and the
        // mixed row, so the two rows serve identical data.
        let db = cdr::generate(cdr::CdrScale {
            customers: scale.cdr_customers,
            days: scale.cdr_days,
            ..cdr::CdrScale::default()
        });

        let server = Server::with_config(cdr_engine(scale, &db), serve_config(scale));
        let reads = prepare_cdr_reads(&server);
        out.push(ServeCase {
            name: "cdr_read_heavy",
            server,
            reads,
            clients: scale.clients,
            iters_per_client: scale.iters_per_client,
            write_every: 0,
            write: None,
            gated: true,
        });

        // CDR mixed: every 4th request per client inserts a fresh premium
        // customer (touching the `customer` key index and the `V_premium`
        // view), concurrent with the reads.
        let server = Server::with_config(cdr_engine(scale, &db), serve_config(scale));
        let reads = prepare_cdr_reads(&server);
        let write: WriteFn = Box::new(|server, client, round| {
            let cid = 5_000_000 + (client as i64) * 1_000_000 + round as i64;
            server.submit_mutate(move |db| {
                db.insert(
                    "customer",
                    bqr_data::tuple![cid, format!("load{client}_{round}"), "premium", "north"],
                )
                .map(drop)
            })
        });
        out.push(ServeCase {
            name: "cdr_mixed",
            server,
            reads,
            clients: scale.clients,
            iters_per_client: scale.iters_per_client,
            write_every: 4,
            write: Some(write),
            gated: false,
        });
        out
    }

    /// The committed workloads.
    pub fn cases() -> Vec<ServeCase> {
        cases_with(&committed_scale())
    }

    /// Drive one workload: `clients` scoped threads, each in a closed loop of
    /// `iters_per_client` requests.  Read-only rows verify every answer
    /// bit-identical (tuples and `FetchStats`) to a direct session execution
    /// captured before the loop; mixed rows assert success (their answers
    /// legitimately evolve under the concurrent writes — the umbrella stress
    /// test pins their consistency).  Completion is asserted exact: a closed
    /// loop under default admission limits rejects and drops nothing.
    pub fn run_case(case: &ServeCase) -> ServeResult {
        let goldens: Vec<bqr_plan::ExecOutput> = case
            .reads
            .iter()
            .map(|name| {
                case.server
                    .engine()
                    .session()
                    .execute(name)
                    .expect("golden execution")
            })
            .collect();

        let t = Instant::now();
        std::thread::scope(|scope| {
            for client in 0..case.clients {
                let server = &case.server;
                let reads = &case.reads;
                let goldens = &goldens;
                let write = case.write.as_ref();
                scope.spawn(move || {
                    for round in 0..case.iters_per_client {
                        let is_write = case.write_every > 0 && (round + 1) % case.write_every == 0;
                        if is_write {
                            let w = write.expect("write workloads carry a write fn");
                            w(server, client, round).wait().expect("write serves");
                        } else {
                            let pick = (client + round) % reads.len();
                            let got = server.execute(reads[pick]).expect("read serves");
                            if case.write_every == 0 {
                                assert_eq!(
                                    got.output, goldens[pick],
                                    "served answer diverged on {}",
                                    reads[pick]
                                );
                            }
                        }
                    }
                });
            }
        });
        let elapsed_ms = t.elapsed().as_secs_f64() * 1_000.0;
        case.server.drain();

        let stats = case.server.stats();
        let total = (case.clients * case.iters_per_client) as u64;
        assert_eq!(
            stats.completed, total,
            "{}: a request was dropped",
            case.name
        );
        assert_eq!(
            stats.rejected, 0,
            "{}: a closed loop never rejects",
            case.name
        );
        ServeResult {
            name: case.name,
            clients: case.clients,
            requests: stats.completed,
            writes: stats.writes,
            coalesced_reads: stats.coalesced_reads,
            elapsed_ms,
            throughput_rps: crate::guarded_ratio(total as f64, elapsed_ms / 1_000.0),
            p50_us: stats.p50_us,
            p99_us: stats.p99_us,
            max_us: stats.max_us,
            gated: case.gated,
        }
    }

    /// The measured result of the write burst.
    #[derive(Debug, Clone)]
    pub struct WriteBurstResult {
        pub name: &'static str,
        pub ops: usize,
        /// Total ms for `ops` serial `mutate` calls (one publish each).
        pub serial_ms: f64,
        /// Total ms for one `mutate_batch` of the same closures (one publish).
        pub batched_ms: f64,
    }

    impl WriteBurstResult {
        /// serial / batched — what one publish per burst saves.
        pub fn speedup(&self) -> f64 {
            crate::guarded_ratio(self.serial_ms, self.batched_ms)
        }
    }

    /// The CDR write burst: insert `ops` fresh premium customers through
    /// serial `mutate` calls on one engine and through a single
    /// `mutate_batch` on an identical engine, then assert the two engines
    /// are bit-identical (database and every view extent) — the benchmark
    /// doubles as a differential test of the batched write path.
    pub fn run_write_burst(scale: &ServeScale, ops: usize) -> WriteBurstResult {
        let db = cdr::generate(cdr::CdrScale {
            customers: scale.cdr_customers,
            days: scale.cdr_days,
            ..cdr::CdrScale::default()
        });
        let insert = |i: usize| {
            move |db: &mut bqr_data::Database| {
                let cid = 6_000_000 + i as i64;
                db.insert(
                    "customer",
                    bqr_data::tuple![cid, format!("burst{i}"), "premium", "north"],
                )
                .map(drop)
            }
        };
        // Warm each engine with one mutate first, so the first-write
        // copy-on-write fork and lazy interning are off both clocks.
        let warmup = |engine: &Engine| {
            engine
                .mutate(|db| {
                    db.insert(
                        "customer",
                        bqr_data::tuple![5_999_999, "burst_warm", "premium", "north"],
                    )
                    .map(drop)
                })
                .expect("warmup insert");
        };

        let serial = cdr_engine(scale, &db);
        warmup(&serial);
        let t = Instant::now();
        for i in 0..ops {
            serial.mutate(insert(i)).expect("serial insert");
        }
        let serial_ms = t.elapsed().as_secs_f64() * 1_000.0;

        let batched = cdr_engine(scale, &db);
        warmup(&batched);
        let t = Instant::now();
        let outcomes = batched
            .mutate_batch((0..ops).map(insert))
            .expect("batched publish");
        let batched_ms = t.elapsed().as_secs_f64() * 1_000.0;
        assert!(outcomes.iter().all(Result::is_ok), "every closure applies");

        // Differential gate: the fast path must not drift from the serial
        // baseline.
        let a = serial.session();
        let b = batched.session();
        assert_eq!(
            a.database(),
            b.database(),
            "write burst: databases diverged"
        );
        for view in a.views().names() {
            assert_eq!(
                a.views().extent(view),
                b.views().extent(view),
                "write burst: view extent `{view}` diverged"
            );
        }

        WriteBurstResult {
            name: "cdr_write_burst_premium",
            ops,
            serial_ms,
            batched_ms,
        }
    }

    /// How many writes the committed burst row commits per side.
    pub const BURST_OPS: usize = 64;

    /// Run every workload plus the write burst and render the
    /// machine-readable report committed as `BENCH_serve.json`.
    pub fn report() -> (Vec<ServeResult>, WriteBurstResult, String) {
        let results: Vec<ServeResult> = cases().iter().map(run_case).collect();
        let burst = run_write_burst(&committed_scale(), BURST_OPS);
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mut json = format!(
            "{{\n  \"bench\": \"serve\",\n  \"unit\": \"us\",\n  \"threads_available\": {threads},\n  \"workloads\": [\n"
        );
        for (i, r) in results.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"clients\": {}, \"requests\": {}, \"writes\": {}, \"coalesced_reads\": {}, \"elapsed_ms\": {:.1}, \"throughput_rps\": {:.0}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}, \"p99_over_p50\": {:.2}, \"tail_gated\": {}, \"max_tail_ratio\": {:.1}}}{}\n",
                r.name,
                r.clients,
                r.requests,
                r.writes,
                r.coalesced_reads,
                r.elapsed_ms,
                r.throughput_rps,
                r.p50_us,
                r.p99_us,
                r.max_us,
                r.tail_ratio(),
                r.gated,
                SERVE_P99_MAX_RATIO,
                if i + 1 < results.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "  ],\n  \"write_burst\": {{\"name\": \"{}\", \"ops\": {}, \"serial_ms\": {:.3}, \"batched_ms\": {:.3}, \"speedup\": {:.1}, \"min_speedup\": {:.1}}}\n}}\n",
            burst.name,
            burst.ops,
            burst.serial_ms,
            burst.batched_ms,
            burst.speedup(),
            BATCHED_WRITE_MIN_SPEEDUP,
        ));
        (results, burst, json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqr_workload::movies;

    #[test]
    fn ratio_guards_are_consistent() {
        let cmp = Comparison {
            bounded_access: 0,
            naive_access: 0,
            bounded_ms: 0.0,
            naive_ms: 0.0,
            answers: 0,
        };
        assert_eq!(cmp.access_reduction(), 1.0, "0/0 access is parity");
        assert_eq!(cmp.speedup(), 1.0, "0/0 time is parity");
        let cmp = Comparison {
            bounded_access: 0,
            naive_access: 10,
            bounded_ms: 0.0,
            naive_ms: 2.5,
            answers: 1,
        };
        assert!(cmp.access_reduction().is_infinite());
        assert!(cmp.speedup().is_infinite());
        let cmp = Comparison {
            bounded_access: 5,
            naive_access: 10,
            bounded_ms: 2.0,
            naive_ms: 4.0,
            answers: 1,
        };
        assert_eq!(cmp.access_reduction(), 2.0);
        assert_eq!(cmp.speedup(), 2.0);
    }

    #[test]
    fn hom_bench_engines_agree_and_report_renders() {
        let (results, json) = hom_bench::report(3);
        assert_eq!(results.len(), 7);
        assert!(json.contains("\"bench\": \"hom\""));
        assert!(json.contains("path6_in_path3"));
        assert!(json.contains("triangle_agm_n400"));
        assert!(json.contains("c4_n400"));
        assert!(json.contains("chain_skew_n20000"));
        assert!(json.contains(hom_bench::COLD_ENUMERATION_CASE));
        for r in &results {
            assert!(r.speedup() > 0.0);
        }
    }

    /// The cold-enumeration pin measures both engines on identical answers;
    /// its row is a cost pin, not a win, so only sanity is asserted here —
    /// the ratio gate lives in the harness's release-mode run.
    #[test]
    fn cold_enumeration_pin_measures_both_engines() {
        let r = hom_bench::run_cold_enumeration(2);
        assert_eq!(r.name, hom_bench::COLD_ENUMERATION_CASE);
        assert!(r.baseline_ms > 0.0 && r.slot_cached_ms > 0.0);
    }

    #[test]
    fn planner_beats_fixed_order_on_cyclic_workloads() {
        for case in hom_bench::eval_cases() {
            let r = hom_bench::run_eval_case(&case, 2);
            assert!(
                r.speedup() > 1.0,
                "{}: planner ({:.2} ms) must beat the fixed-order engine ({:.2} ms)",
                r.name,
                r.slot_cached_ms,
                r.baseline_ms
            );
        }
    }

    /// Parallel scaling needs parallel hardware *and* an otherwise idle
    /// machine: asserted only when ≥ 4 threads exist, and `#[ignore]`d so
    /// concurrently running sibling tests (libtest defaults to one thread
    /// per core) cannot steal the cores mid-measurement and fail it
    /// spuriously.  Run explicitly with `cargo test --release -p bqr-bench
    /// -- --ignored` on a multicore machine; the in-container benchmark
    /// machine is single-core, where the expected scaling is ~1.0×.
    #[test]
    #[ignore = "wall-clock scaling; run explicitly on an idle multicore machine"]
    fn parallel_execution_scales_on_multicore_machines() {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if threads < 4 {
            eprintln!("skipping scaling assertion: only {threads} thread(s) available");
            return;
        }
        let case = plan_bench::triangle_case(400, 3);
        let r = plan_bench::run_case(&case);
        let pipeline = bqr_plan::Pipeline::compile(&case.plan, &case.idb, &case.views).unwrap();
        let expected = pipeline
            .execute(&case.idb, &bqr_plan::ExecOptions::serial())
            .unwrap();
        let p = plan_bench::run_parallel(&case, &pipeline, &expected, 4, r.compiled_ms);
        assert!(
            p.scaling > 1.5,
            "expected >1.5x scaling at 4 shards on {threads} threads, got {:.2}x",
            p.scaling
        );
    }

    #[test]
    fn plan_bench_executors_agree_and_parallel_is_identical() {
        // A reduced triangle instance keeps the debug-mode test fast; the
        // committed BENCH_plan.json rows use n = 400 via the harness.
        let case = plan_bench::triangle_case(60, 2);
        let r = plan_bench::run_case(&case);
        assert!(r.reference_ms > 0.0 && r.compiled_ms > 0.0);
        assert!(r.speedup() > 0.0);
        let pipeline = bqr_plan::Pipeline::compile(&case.plan, &case.idb, &case.views).unwrap();
        let expected = pipeline
            .execute(&case.idb, &bqr_plan::ExecOptions::serial())
            .unwrap();
        let p = plan_bench::run_parallel(&case, &pipeline, &expected, 4, r.compiled_ms);
        assert_eq!(p.shards, 4);
        assert!(p.ms > 0.0);
    }

    /// A reduced prepared case: cold rounds always miss (fresh epochs), warm
    /// repeats always hit, outputs match the reference — the counter
    /// assertions live inside `run_prepared` itself.
    #[test]
    fn prepared_case_cold_misses_and_warm_hits() {
        let triangle = plan_bench::triangle_case(60, 0);
        let case = plan_bench::PreparedCase {
            name: "triangle_small",
            plan: triangle.plan,
            rebuild: Box::new(|| {
                let c = plan_bench::triangle_case(60, 0);
                (c.idb, c.views)
            }),
            cold_rounds: 2,
            warm_repeats: 3,
        };
        let r = plan_bench::run_prepared(&case);
        assert_eq!(r.cold_rounds, 2);
        assert_eq!(r.warm_repeats, 3);
        assert!(r.cold_ms > 0.0 && r.warm_ms > 0.0);
        assert!(r.speedup() > 0.0);
    }

    /// All three closed-loop workloads at the reduced scale: read-only rows
    /// verify every served answer against the direct session golden inside
    /// `run_case` itself; the mixed row exercises interleaved writes.
    #[test]
    fn serve_closed_loop_round_trips_all_reduced_workloads() {
        let scale = serve_bench::reduced_scale();
        let total = (scale.clients * scale.iters_per_client) as u64;
        for case in &serve_bench::cases_with(&scale) {
            let r = serve_bench::run_case(case);
            assert_eq!(r.requests, total, "{}: closed loop completes", r.name);
            assert!(r.throughput_rps > 0.0);
            assert!(r.p50_us <= r.p99_us && r.p99_us <= r.max_us);
            if case.write_every > 0 {
                assert!(r.writes > 0, "the mixed row must commit writes");
            } else {
                assert_eq!(r.writes, 0);
            }
        }
    }

    /// The write burst's differential gate (serial engine vs batched engine
    /// bit-identical) lives inside `run_write_burst`; the ≥ 2× speedup gate
    /// is release-mode-only, in the harness.
    #[test]
    fn serve_write_burst_is_differentially_identical() {
        let r = serve_bench::run_write_burst(&serve_bench::reduced_scale(), 6);
        assert_eq!(r.ops, 6);
        assert!(r.serial_ms > 0.0 && r.batched_ms > 0.0);
        assert!(r.speedup() > 0.0);
    }

    #[test]
    fn compare_helper_round_trips_the_movie_example() {
        let setting = movies::setting(50, 40);
        let checker = checker_with_annotations(&setting, &[]);
        let analysis = plan_for(&checker, &movies::q_xi());
        assert!(analysis.topped);
        let db = movies::generate(movies::MovieScale {
            persons: 500,
            movies: 300,
            n0: 50,
            seed: 2,
        });
        let (idb, cache) = prepare(&setting, db);
        let cmp = compare(&movies::q0(), &analysis.plan.unwrap(), &idb, &cache);
        assert!(cmp.bounded_access <= 150);
        assert!(cmp.naive_access > cmp.bounded_access);
        assert!(cmp.access_reduction() > 1.0);
        assert!(cmp.speedup() > 0.0);
    }
}
