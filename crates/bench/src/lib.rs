//! # bqr-bench — experiment harness
//!
//! The library half of the benchmark crate: shared measurement helpers used
//! both by the `harness` binary (which prints the tables recorded in
//! EXPERIMENTS.md) and by the Criterion benches.

use bqr_core::problem::RewritingSetting;
use bqr_core::size_bounded::BoundedOutputOracle;
use bqr_core::topped::{ToppedAnalysis, ToppedChecker};
use bqr_data::{Database, FetchStats, IndexedDatabase};
use bqr_plan::QueryPlan;
use bqr_query::eval::eval_cq_counting;
use bqr_query::{ConjunctiveQuery, MaterializedViews};
use std::time::Instant;

/// The result of answering one query both ways.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Base tuples accessed by the bounded plan (`|D_ξ|`).
    pub bounded_access: usize,
    /// Base tuples accessed by the naive evaluation.
    pub naive_access: usize,
    /// Wall-clock milliseconds for the bounded plan.
    pub bounded_ms: f64,
    /// Wall-clock milliseconds for the naive evaluation.
    pub naive_ms: f64,
    /// Number of answers (identical for both, asserted).
    pub answers: usize,
}

impl Comparison {
    /// Access reduction factor (naive / bounded).
    pub fn access_reduction(&self) -> f64 {
        self.naive_access as f64 / self.bounded_access.max(1) as f64
    }

    /// Speed-up factor (naive / bounded wall-clock).
    pub fn speedup(&self) -> f64 {
        self.naive_ms / self.bounded_ms.max(1e-6)
    }
}

/// Build the runtime objects for a setting over one instance.
pub fn prepare(
    setting: &RewritingSetting,
    db: Database,
) -> (IndexedDatabase, MaterializedViews) {
    let cache = setting
        .views
        .materialize(&db)
        .expect("views materialise over generated instances");
    let idb = IndexedDatabase::build(db, setting.access.clone())
        .expect("indices build over generated instances");
    (idb, cache)
}

/// A topped-query checker with the given per-view output-bound annotations.
pub fn checker_with_annotations<'a>(
    setting: &'a RewritingSetting,
    annotations: &[(&str, usize)],
) -> ToppedChecker<'a> {
    let mut oracle = BoundedOutputOracle::new(
        setting.schema.clone(),
        setting.access.clone(),
        setting.budget,
    );
    for (name, bound) in annotations {
        oracle.annotate_view(*name, *bound);
    }
    ToppedChecker::with_oracle(setting, oracle)
}

/// Analyse a query; panics with the rejection reason if it is not topped
/// (benchmark workloads are designed so their rewritable queries are topped).
pub fn plan_for(checker: &ToppedChecker<'_>, query: &ConjunctiveQuery) -> ToppedAnalysis {
    checker
        .analyze_cq(query)
        .expect("the analysis itself does not fail")
}

/// Execute one query both through a bounded plan and naively, asserting that
/// the answers agree.
pub fn compare(
    query: &ConjunctiveQuery,
    plan: &QueryPlan,
    idb: &IndexedDatabase,
    cache: &MaterializedViews,
) -> Comparison {
    let t = Instant::now();
    let bounded = bqr_plan::execute(plan, idb, cache).expect("bounded plans execute");
    let bounded_ms = t.elapsed().as_secs_f64() * 1_000.0;

    let t = Instant::now();
    let mut naive_stats = FetchStats::new();
    let naive = eval_cq_counting(query, idb.database(), Some(cache), &mut naive_stats)
        .expect("naive evaluation succeeds");
    let naive_ms = t.elapsed().as_secs_f64() * 1_000.0;

    assert_eq!(bounded.tuples, naive, "bounded rewriting must be exact");
    Comparison {
        bounded_access: bounded.stats.base_tuples_accessed(),
        naive_access: naive_stats.base_tuples_accessed(),
        bounded_ms,
        naive_ms,
        answers: naive.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqr_workload::movies;

    #[test]
    fn compare_helper_round_trips_the_movie_example() {
        let setting = movies::setting(50, 40);
        let checker = checker_with_annotations(&setting, &[]);
        let analysis = plan_for(&checker, &movies::q_xi());
        assert!(analysis.topped);
        let db = movies::generate(movies::MovieScale {
            persons: 500,
            movies: 300,
            n0: 50,
            seed: 2,
        });
        let (idb, cache) = prepare(&setting, db);
        let cmp = compare(&movies::q0(), &analysis.plan.unwrap(), &idb, &cache);
        assert!(cmp.bounded_access <= 150);
        assert!(cmp.naive_access > cmp.bounded_access);
        assert!(cmp.access_reduction() > 1.0);
        assert!(cmp.speedup() > 0.0);
    }
}
