//! The experiment harness: regenerates every table of EXPERIMENTS.md.
//!
//! Usage: `cargo run -p bqr-bench --bin harness --release -- [e1|e4|e5|e6|e7|hom|plan|all]`
//!
//! The `hom` mode benchmarks the slot-based homomorphism engine against the
//! retained pre-refactor engine on repeated containment checks and writes
//! the machine-readable report to `BENCH_hom.json` (path overridable via the
//! `BENCH_HOM_JSON` environment variable), so the perf trajectory of the
//! hot path is tracked across PRs.
//!
//! The `plan` mode benchmarks the compiled plan-execution pipeline against
//! the retained tree-walking interpreter (`exec::reference`) on the movies,
//! CDR and AGM-triangle plan workloads, measures sharded-parallel scaling at
//! 1/2/4 shards, runs the **prepared** rows (cold compile+exec on a freshly
//! loaded instance vs warm pipeline-cache-hit execution), writes
//! `BENCH_plan.json` (`BENCH_PLAN_JSON` to override), and **exits non-zero**
//! if the compiled executor is slower than the reference on the movies
//! workload, or if a warm cache-hit execution is not at least 3× faster
//! than a cold compile+exec there — CI runs it as a regression gate.
//! `prepared` is an alias for `plan` (the prepared rows are part of the same
//! report file).
//!
//! The `serve` mode runs the closed-loop serving harness over `bqr-server`
//! (movies read-heavy, CDR read-heavy, CDR mixed read/write — each with N
//! client threads submitting, waiting, and resubmitting), plus the CDR write
//! burst (`Engine::mutate_batch` vs serial `mutate`).  It writes
//! `BENCH_serve.json` (`BENCH_SERVE_JSON` to override) and **exits non-zero**
//! when p99 exceeds 10× p50 on a warm prepared read-only row, or when the
//! batched write burst is not ≥ 2× faster than serial single-mutate commits.

use bqr_bench::{checker_with_annotations, compare, plan_for, prepare};
use bqr_core::bounded_eval::boundedly_evaluable_cq;
use bqr_core::problem::RewritingSetting;
use bqr_query::ViewSet;
use bqr_workload::random::{generate_queries, RandomQueryConfig};
use bqr_workload::{cdr, discover, movies, social};
use std::time::Instant;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match which.as_str() {
        "e1" => e1_figure1(),
        "e4" => e4_analysis_cost(),
        "e5" => e5_graph_search(),
        "e6" => e6_cdr(),
        "e7" => e7_random(),
        "hom" => hom_engine(),
        "plan" | "prepared" => plan_executor(),
        "serve" => serve_front(),
        "all" => {
            e1_figure1();
            e4_analysis_cost();
            e5_graph_search();
            e6_cdr();
            e7_random();
            hom_engine();
            plan_executor();
            serve_front();
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; use e1|e4|e5|e6|e7|hom|plan|prepared|serve|all"
            );
            std::process::exit(1);
        }
    }
}

/// `hom` — slot-based engine + cached indexes vs the pre-refactor engine on
/// repeated containment (the same query pair checked 1000×), plus the
/// planner cases: cost-based / generic-join plans vs the PR 1 fixed-order
/// slot engine on cyclic and skewed workloads.  Emits `BENCH_hom.json`.
fn hom_engine() {
    use bqr_bench::hom_bench;

    const REPEATS: usize = 1_000;
    println!(
        "\n== hom: slot engine vs pre-refactor engine ({REPEATS}× containment); \
         planner vs PR 1 fixed order ({}× eval on *_agm_* / *_skew_* rows) ==",
        hom_bench::EVAL_REPEATS
    );
    let (results, json) = hom_bench::report(REPEATS);
    println!(
        "{:<36} {:>8} {:>14} {:>16} {:>9}",
        "case", "repeats", "baseline-ms", "planned-ms", "speedup"
    );
    for r in &results {
        println!(
            "{:<36} {:>8} {:>14.2} {:>16.2} {:>8.1}x",
            r.name,
            r.repeats,
            r.baseline_ms,
            r.slot_cached_ms,
            r.speedup()
        );
    }
    let path = std::env::var("BENCH_HOM_JSON").unwrap_or_else(|_| "BENCH_hom.json".to_string());
    std::fs::write(&path, json).expect("write BENCH_hom.json");
    println!("wrote {path}");

    // The cold-path pin (ROADMAP "known cost"): a cold single-shot
    // enumeration pays snapshot interning once; it may not silently grow
    // past the pinned multiple of the reference engine.
    let cold = results
        .iter()
        .find(|r| r.name == hom_bench::COLD_ENUMERATION_CASE)
        .expect("the cold-enumeration row exists");
    if cold.slot_cached_ms > hom_bench::COLD_ENUMERATION_MAX_RATIO * cold.baseline_ms {
        eprintln!(
            "REGRESSION: cold single-shot enumeration ({:.2} ms) exceeds {}x the reference engine ({:.2} ms)",
            cold.slot_cached_ms,
            hom_bench::COLD_ENUMERATION_MAX_RATIO,
            cold.baseline_ms
        );
        std::process::exit(1);
    }
}

/// `plan` / `prepared` — the compiled plan-execution pipeline vs the
/// tree-walking reference interpreter, parallel scaling, the prepared
/// (cold compile+exec vs warm cache-hit) rows, and the runtime-guard
/// overhead comparison.  Emits `BENCH_plan.json` and fails (exit 1) when
/// the compiled executor loses to the reference on the movies workload,
/// when the vectorised kernels do not beat the committed row-at-a-time
/// movies time by ≥ 1.2×, when a warm cache-hit execution is not ≥ 3×
/// faster than a cold compile+exec there, when *any* prepared row comes
/// out warm-slower-than-cold (a warm run is a strict subset of a cold
/// one — such a row is a measurement or caching bug, never a fact), when
/// a delta-maintained single-tuple insert is not ≥ 5× faster than a full
/// version rebuild on either write-path workload, or when guarded
/// execution exceeds the unguarded baseline by more than 5%.
fn plan_executor() {
    use bqr_bench::plan_bench;

    println!(
        "\n== plan: compiled pipeline vs exec::reference; parallel scaling at 1/2/4 shards; \
         prepared cold vs warm; write path delta vs rebuild; guard overhead =="
    );
    let (results, parallel, prepared, write_path, guard, guard_stats, json) = plan_bench::report();
    println!(
        "{:<28} {:>8} {:>14} {:>14} {:>9}",
        "case", "repeats", "reference-ms", "compiled-ms", "speedup"
    );
    for r in &results {
        println!(
            "{:<28} {:>8} {:>14.2} {:>14.2} {:>8.1}x",
            r.name,
            r.repeats,
            r.reference_ms,
            r.compiled_ms,
            r.speedup()
        );
    }
    println!(
        "{:<28} {:>8} {:>14} {:>14}",
        "parallel", "shards", "ms", "scaling"
    );
    for p in &parallel {
        println!(
            "{:<28} {:>8} {:>14.2} {:>13.2}x",
            p.name, p.shards, p.ms, p.scaling
        );
    }
    println!(
        "{:<28} {:>6}/{:<6} {:>14} {:>14} {:>9}  cache h/m/inval",
        "prepared", "cold", "warm", "cold-ms/exec", "warm-ms/exec", "speedup"
    );
    for p in &prepared {
        println!(
            "{:<28} {:>6}/{:<6} {:>14.3} {:>14.4} {:>8.1}x  {}/{}/{}",
            p.name,
            p.cold_rounds,
            p.warm_repeats,
            p.cold_ms,
            p.warm_ms,
            p.speedup(),
            p.cache.hits,
            p.cache.misses,
            p.cache.invalidations
        );
    }
    println!(
        "{:<28} {:>8} {:>14} {:>14} {:>9}",
        "write path", "repeats", "delta-ms", "rebuild-ms", "speedup"
    );
    for w in &write_path {
        println!(
            "{:<28} {:>8} {:>14.3} {:>14.3} {:>8.1}x",
            w.name,
            w.repeats,
            w.delta_ms,
            w.rebuild_ms,
            w.speedup()
        );
    }
    println!(
        "{:<28} {:>8} {:>14} {:>14} {:>9}",
        "guard overhead", "repeats", "disabled-ms", "enabled-ms", "ratio"
    );
    println!(
        "{:<28} {:>8} {:>14.2} {:>14.2} {:>8.3}x",
        guard.name,
        guard.repeats,
        guard.disabled_ms,
        guard.enabled_ms,
        guard.ratio()
    );
    println!(
        "guard stats exercise: cancellations {}  deadline {}  memory {}  fetch {}  panics {}  fallbacks {}",
        guard_stats.cancellations,
        guard_stats.deadline_trips,
        guard_stats.memory_trips,
        guard_stats.fetch_trips,
        guard_stats.panics_contained,
        guard_stats.serial_fallbacks
    );

    let path = std::env::var("BENCH_PLAN_JSON").unwrap_or_else(|_| "BENCH_plan.json".to_string());
    std::fs::write(&path, json).expect("write BENCH_plan.json");
    println!("wrote {path}");

    let movies = results
        .iter()
        .find(|r| r.name.starts_with("movies"))
        .expect("the movies row exists");
    if movies.speedup() < 1.0 {
        eprintln!(
            "REGRESSION: compiled executor ({:.2} ms) is slower than exec::reference ({:.2} ms) on the movies workload",
            movies.compiled_ms, movies.reference_ms
        );
        std::process::exit(1);
    }
    let vectorised_budget_ms =
        plan_bench::ROW_AT_A_TIME_MOVIES_MS / plan_bench::VECTORISED_MIN_SPEEDUP;
    if movies.compiled_ms > vectorised_budget_ms {
        eprintln!(
            "REGRESSION: vectorised executor ({:.2} ms) does not beat the committed row-at-a-time movies time ({:.1} ms) by {}x (needs <= {:.2} ms)",
            movies.compiled_ms,
            plan_bench::ROW_AT_A_TIME_MOVIES_MS,
            plan_bench::VECTORISED_MIN_SPEEDUP,
            vectorised_budget_ms
        );
        std::process::exit(1);
    }
    for p in &prepared {
        if p.warm_ms > p.cold_ms {
            eprintln!(
                "REGRESSION: warm cache-hit execution ({:.4} ms) is slower than a cold compile+exec ({:.3} ms) on {} — a warm run does strictly less work, so this row is a measurement or caching bug",
                p.warm_ms, p.cold_ms, p.name
            );
            std::process::exit(1);
        }
    }
    let movies_prepared = prepared
        .iter()
        .find(|p| p.name.starts_with("movies"))
        .expect("the prepared movies row exists");
    if movies_prepared.speedup() < plan_bench::PREPARED_MIN_SPEEDUP {
        eprintln!(
            "REGRESSION: warm cache-hit execution ({:.4} ms) is not {}x faster than cold compile+exec ({:.3} ms) on the movies workload",
            movies_prepared.warm_ms,
            plan_bench::PREPARED_MIN_SPEEDUP,
            movies_prepared.cold_ms
        );
        std::process::exit(1);
    }
    for w in &write_path {
        if w.speedup() < plan_bench::WRITE_MIN_SPEEDUP {
            eprintln!(
                "REGRESSION: delta-maintained single-tuple insert ({:.3} ms) is not {}x faster than a full version rebuild ({:.3} ms) on {}",
                w.delta_ms,
                plan_bench::WRITE_MIN_SPEEDUP,
                w.rebuild_ms,
                w.name
            );
            std::process::exit(1);
        }
        if w.name == "cdr_insert_premium_10k" && w.delta_ms > plan_bench::CDR_WRITE_MAX_MS {
            eprintln!(
                "REGRESSION: delta-maintained single-tuple insert ({:.3} ms) exceeds the {:.1} ms absolute ceiling on {}",
                w.delta_ms,
                plan_bench::CDR_WRITE_MAX_MS,
                w.name
            );
            std::process::exit(1);
        }
    }
    if guard.ratio() > plan_bench::GUARD_MAX_OVERHEAD {
        eprintln!(
            "REGRESSION: guarded execution ({:.2} ms) exceeds the unguarded baseline ({:.2} ms) by more than {:.0}% on the movies workload",
            guard.enabled_ms,
            guard.disabled_ms,
            (plan_bench::GUARD_MAX_OVERHEAD - 1.0) * 100.0
        );
        std::process::exit(1);
    }
}

/// `serve` — the closed-loop serving harness: three concurrent-client
/// workloads over `bqr-server` plus the CDR write burst.  Emits
/// `BENCH_serve.json` and fails (exit 1) when a warm prepared read-only
/// row's p99 exceeds [`serve_bench::SERVE_P99_MAX_RATIO`]× its p50, or when
/// the batched write burst is not
/// [`serve_bench::BATCHED_WRITE_MIN_SPEEDUP`]× faster than serial commits.
fn serve_front() {
    use bqr_bench::serve_bench;

    println!(
        "\n== serve: closed-loop clients over bqr-server; write burst mutate_batch vs serial =="
    );
    let (results, burst, json) = serve_bench::report();
    println!(
        "{:<22} {:>7} {:>9} {:>7} {:>10} {:>11} {:>8} {:>8} {:>8} {:>9}",
        "workload",
        "clients",
        "requests",
        "writes",
        "coalesced",
        "rps",
        "p50-us",
        "p99-us",
        "max-us",
        "p99/p50"
    );
    for r in &results {
        println!(
            "{:<22} {:>7} {:>9} {:>7} {:>10} {:>11.0} {:>8} {:>8} {:>8} {:>8.1}x",
            r.name,
            r.clients,
            r.requests,
            r.writes,
            r.coalesced_reads,
            r.throughput_rps,
            r.p50_us,
            r.p99_us,
            r.max_us,
            r.tail_ratio()
        );
    }
    println!(
        "write burst: {} ops {}  serial {:.2} ms  batched {:.2} ms  speedup {:.1}x",
        burst.name,
        burst.ops,
        burst.serial_ms,
        burst.batched_ms,
        burst.speedup()
    );

    let path = std::env::var("BENCH_SERVE_JSON").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    std::fs::write(&path, json).expect("write BENCH_serve.json");
    println!("wrote {path}");

    for r in &results {
        if r.gated && r.tail_ratio() > serve_bench::SERVE_P99_MAX_RATIO {
            eprintln!(
                "REGRESSION: p99 latency ({} us) exceeds {}x p50 ({} us) on the warm prepared read workload {}",
                r.p99_us,
                serve_bench::SERVE_P99_MAX_RATIO,
                r.p50_us,
                r.name
            );
            std::process::exit(1);
        }
    }
    if burst.speedup() < serve_bench::BATCHED_WRITE_MIN_SPEEDUP {
        eprintln!(
            "REGRESSION: batched write burst ({:.2} ms) is not {}x faster than serial single-mutate commits ({:.2} ms)",
            burst.batched_ms,
            serve_bench::BATCHED_WRITE_MIN_SPEEDUP,
            burst.serial_ms
        );
        std::process::exit(1);
    }
}

/// E1 — Fig. 1 / Examples 1.1, 2.2, 2.3: the rewriting of Q0 over V1 fetches
/// at most 2·N0 tuples, independent of |D|.
fn e1_figure1() {
    println!("\n== E1: Example 1.1 / Fig. 1 — Q0 over V1, N0 = 100, M = 40 ==");
    let n0 = 100;
    let setting = movies::setting(n0, 40);
    let checker = checker_with_annotations(&setting, &[]);
    let analysis = plan_for(&checker, &movies::q_xi());
    println!(
        "topped: {}  plan size: {}  worst-case |Dξ|: {} (paper: 2·N0 = {})",
        analysis.topped,
        analysis.plan_size.unwrap(),
        analysis.fetch_bound.unwrap(),
        2 * n0
    );
    let plan = analysis.plan.unwrap();
    println!(
        "{:>10} {:>10} | {:>14} {:>14} | {:>12} {:>12} | {:>9}",
        "persons", "|D|", "bounded-access", "naive-access", "bounded-ms", "naive-ms", "reduction"
    );
    for persons in [2_000usize, 8_000, 32_000] {
        let db = movies::generate(movies::MovieScale {
            persons,
            movies: 2_000,
            n0,
            seed: 1,
        });
        let size = db.size();
        let (idb, cache) = prepare(&setting, db);
        let cmp = compare(&movies::q0(), &plan, &idb, &cache);
        println!(
            "{:>10} {:>10} | {:>14} {:>14} | {:>12.3} {:>12.3} | {:>8.0}x",
            persons,
            size,
            cmp.bounded_access,
            cmp.naive_access,
            cmp.bounded_ms,
            cmp.naive_ms,
            cmp.access_reduction()
        );
    }
}

/// E4 — Table I in practice: cost of the PTIME effective-syntax check versus
/// the exponential exact search, as the query / bound grows.
fn e4_analysis_cost() {
    use bqr_core::decide::decide_vbrp;
    use bqr_core::problem::VbrpInstance;
    use bqr_plan::PlanLanguage;
    use bqr_query::parser::parse_cq;

    println!(
        "\n== E4: analysis cost — effective syntax (PTIME) vs exact search (exponential in M) =="
    );
    println!(
        "{:>28} {:>14} {:>16}",
        "query atoms / bound M", "topped-check", "exact-VBRP"
    );
    let scale = cdr::CdrScale::default();
    let setting = cdr::setting(&scale, 120);
    let checker = checker_with_annotations(&setting, &cdr::view_bounds());

    // Topped check on growing chain queries.
    for atoms in [2usize, 4, 6, 8] {
        let mut body = String::from("Q(c1) :- calls(17, 1, c1, d0)");
        for i in 1..atoms {
            body.push_str(&format!(", calls(c{i}, 1, c{}, d{i})", i + 1));
        }
        let q = parse_cq(&body).unwrap();
        let t = Instant::now();
        let analysis = checker.analyze_cq(&q).unwrap();
        let topped_ms = t.elapsed().as_secs_f64() * 1_000.0;
        println!(
            "{:>22} atoms {:>11.2}ms {:>16}",
            atoms,
            topped_ms,
            if analysis.topped {
                "(topped)"
            } else {
                "(not topped)"
            }
        );
    }
    // Exact search on a tiny instance with growing M.
    let small_schema =
        bqr_data::DatabaseSchema::with_relations(&[("rating", &["mid", "rank"])]).unwrap();
    let small_access = bqr_data::AccessSchema::new(vec![bqr_data::AccessConstraint::new(
        "rating",
        &["mid"],
        &["rank"],
        1,
    )
    .unwrap()]);
    let q = parse_cq("Q(r) :- rating(42, r)").unwrap();
    for m in [3usize, 4, 5] {
        let setting = RewritingSetting::new(
            small_schema.clone(),
            small_access.clone(),
            ViewSet::empty(),
            m,
        );
        let t = Instant::now();
        let outcome =
            decide_vbrp(&VbrpInstance::new(setting, q.clone()), PlanLanguage::Cq).unwrap();
        let ms = t.elapsed().as_secs_f64() * 1_000.0;
        println!(
            "{:>22} M = {m} {:>13} {:>13.1}ms  ({})",
            "exact search,",
            "",
            ms,
            if outcome.has_rewriting() {
                "rewriting found"
            } else {
                "none"
            }
        );
    }
}

/// E5 — the Graph-Search example: constant data access as the graph grows.
fn e5_graph_search() {
    println!("\n== E5: Facebook Graph-Search example — friends ≤ 50, one dining/day ==");
    let setting = social::setting(50, 200);
    let checker = checker_with_annotations(&setting, &[]);
    let query = social::graph_search_query(0, 15);
    let analysis = plan_for(&checker, &query);
    println!(
        "topped: {}  plan size: {}  worst-case |Dξ|: {}",
        analysis.topped,
        analysis.plan_size.unwrap(),
        analysis.fetch_bound.unwrap()
    );
    let plan = analysis.plan.unwrap();
    println!(
        "{:>10} {:>10} | {:>14} {:>14} | {:>12} {:>12} | {:>9}",
        "persons", "|D|", "bounded-access", "naive-access", "bounded-ms", "naive-ms", "reduction"
    );
    for persons in [2_000usize, 8_000, 32_000] {
        let db = social::generate(social::SocialScale {
            persons,
            restaurants: 500,
            max_friends: 50,
            days: 31,
            seed: 17,
        });
        let size = db.size();
        let (idb, cache) = prepare(&setting, db);
        let cmp = compare(&query, &plan, &idb, &cache);
        println!(
            "{:>10} {:>10} | {:>14} {:>14} | {:>12.3} {:>12.3} | {:>8.0}x",
            persons,
            size,
            cmp.bounded_access,
            cmp.naive_access,
            cmp.bounded_ms,
            cmp.naive_ms,
            cmp.access_reduction()
        );
    }
}

/// E6 — the CDR workload: fraction of queries improved and per-query
/// access-reduction factors, at two database scales.
fn e6_cdr() {
    println!("\n== E6: CDR workload — 10 templates, views V_premium / V_north_towers ==");
    for customers in [2_000usize, 10_000] {
        let scale = cdr::CdrScale {
            customers,
            days: 14,
            ..cdr::CdrScale::default()
        };
        let setting = cdr::setting(&scale, 120);
        let checker = checker_with_annotations(&setting, &cdr::view_bounds());
        let db = cdr::generate(scale);
        println!("\n-- customers = {customers}, |D| = {} --", db.size());
        let (idb, cache) = prepare(&setting, db);
        println!(
            "{:<24} {:>8} {:>14} {:>14} {:>10}",
            "query", "bounded?", "bounded-access", "naive-access", "reduction"
        );
        let mut improved = 0usize;
        let queries = cdr::workload(17, 3);
        for q in &queries {
            let analysis = checker.analyze_cq(&q.query).unwrap();
            if analysis.topped {
                let cmp = compare(&q.query, &analysis.plan.unwrap(), &idb, &cache);
                improved += 1;
                println!(
                    "{:<24} {:>8} {:>14} {:>14} {:>9.0}x",
                    q.name,
                    "yes",
                    cmp.bounded_access,
                    cmp.naive_access,
                    cmp.access_reduction()
                );
            } else {
                println!(
                    "{:<24} {:>8} {:>14} {:>14} {:>10}",
                    q.name, "no", "-", "-", "-"
                );
            }
        }
        println!(
            "improved: {improved}/{} queries ({}%)",
            queries.len(),
            100 * improved / queries.len()
        );
    }
}

/// E7 — random acyclic CQ workloads: how many are boundedly evaluable
/// (no views) vs boundedly rewritable with the CDR views, under mined
/// constraints.
fn e7_random() {
    println!("\n== E7: random ACQ workloads over the CDR schema ==");
    let scale = cdr::CdrScale {
        customers: 1_000,
        days: 7,
        ..cdr::CdrScale::default()
    };
    let db = cdr::generate(scale);
    let mined = bqr_workload::discover_constraints(
        &db,
        &discover::DiscoveryOptions {
            max_bound: 100,
            max_key_size: 2,
        },
    );
    println!(
        "mined {} access constraints from a {}-tuple sample",
        mined.len(),
        db.size()
    );

    println!(
        "{:>8} {:>12} | {:>22} {:>26}",
        "atoms", "const-prob", "boundedly evaluable", "bounded rewriting w/ views"
    );
    for (atoms, p) in [(2usize, 0.5f64), (3, 0.5), (3, 0.3), (4, 0.3)] {
        let queries = generate_queries(
            &cdr::schema(),
            &RandomQueryConfig {
                atoms,
                constant_probability: p,
                constants: (0..50).map(bqr_data::Value::int).collect(),
                head_variables: 1,
                seed: 4242,
            },
            100,
        );
        let viewless = RewritingSetting::new(cdr::schema(), mined.clone(), ViewSet::empty(), 200);
        let with_views = RewritingSetting::new(cdr::schema(), mined.clone(), cdr::views(), 200);
        let checker = checker_with_annotations(&with_views, &cdr::view_bounds());
        let mut evaluable = 0usize;
        let mut rewritable = 0usize;
        for q in &queries {
            if boundedly_evaluable_cq(&viewless, q).unwrap().topped {
                evaluable += 1;
            }
            if checker.analyze_cq(q).unwrap().topped {
                rewritable += 1;
            }
        }
        println!(
            "{:>8} {:>12.1} | {:>20}% {:>25}%",
            atoms, p, evaluable, rewritable
        );
    }
}
