//! Criterion bench for plan execution: the compiled operator pipeline
//! (interned ids, hash joins, id-native fetches) versus the retained
//! tree-walking interpreter (`exec::reference`), plus sharded-parallel
//! execution of the compiled pipeline.  The committed rows live in
//! `BENCH_plan.json` (harness `plan` mode).

use bqr_bench::plan_bench;
use bqr_plan::exec::{reference, ExecOptions, Pipeline};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Reference interpreter vs compiled pipeline (compile once, execute per
/// iteration) on every plan-execution case.
fn bench_plan_executors(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_exec");
    group.sample_size(10);
    for case in plan_bench::cases() {
        group.bench_with_input(
            BenchmarkId::new("reference", case.name),
            &case,
            |b, case| b.iter(|| reference::execute(&case.plan, &case.idb, &case.views).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("compiled", case.name), &case, |b, case| {
            let pipeline = Pipeline::compile(&case.plan, &case.idb, &case.views).unwrap();
            let serial = ExecOptions::serial();
            b.iter(|| pipeline.execute(&case.idb, &serial).unwrap())
        });
    }
    group.finish();
}

/// Sharded-parallel scaling on the largest workload (the AGM triangle
/// plan); bit-identical output is asserted by `tests/exec_diff.rs` and the
/// plan-bench helpers, here only wall-clock is measured.
fn bench_parallel_scaling(c: &mut Criterion) {
    let case = plan_bench::triangle_case(400, 1);
    let pipeline = Pipeline::compile(&case.plan, &case.idb, &case.views).unwrap();
    let mut group = c.benchmark_group("plan_exec_parallel");
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("triangle_agm_n400_plan", shards),
            &shards,
            |b, &shards| {
                let options = ExecOptions::parallel(shards);
                b.iter(|| pipeline.execute(&case.idb, &options).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_plan_executors, bench_parallel_scaling);
criterion_main!(benches);
