//! Criterion bench for experiment E1/E5: bounded plan vs naive evaluation on
//! the movie and social workloads, at increasing database sizes.

use bqr_bench::{checker_with_annotations, plan_for, prepare};
use bqr_query::eval::eval_cq;
use bqr_workload::{movies, social};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_movies(c: &mut Criterion) {
    let setting = movies::setting(100, 40);
    let checker = checker_with_annotations(&setting, &[]);
    let plan = plan_for(&checker, &movies::q_xi()).plan.unwrap();
    let mut group = c.benchmark_group("movies_q0");
    group.sample_size(10);
    for persons in [1_000usize, 4_000] {
        let db = movies::generate(movies::MovieScale {
            persons,
            movies: 1_000,
            n0: 100,
            seed: 1,
        });
        let (idb, cache) = prepare(&setting, db.clone());
        group.bench_with_input(
            BenchmarkId::new("bounded_plan", persons),
            &persons,
            |b, _| b.iter(|| bqr_plan::execute(&plan, &idb, &cache).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("naive_eval", persons), &persons, |b, _| {
            b.iter(|| eval_cq(&movies::q0(), &db, None).unwrap())
        });
    }
    group.finish();
}

fn bench_graph_search(c: &mut Criterion) {
    let setting = social::setting(50, 200);
    let checker = checker_with_annotations(&setting, &[]);
    let query = social::graph_search_query(0, 15);
    let plan = plan_for(&checker, &query).plan.unwrap();
    let mut group = c.benchmark_group("graph_search");
    group.sample_size(10);
    for persons in [2_000usize, 8_000] {
        let db = social::generate(social::SocialScale {
            persons,
            restaurants: 500,
            max_friends: 50,
            days: 31,
            seed: 17,
        });
        let (idb, cache) = prepare(&setting, db.clone());
        group.bench_with_input(
            BenchmarkId::new("bounded_plan", persons),
            &persons,
            |b, _| b.iter(|| bqr_plan::execute(&plan, &idb, &cache).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("naive_eval", persons), &persons, |b, _| {
            b.iter(|| eval_cq(&query, &db, None).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_movies, bench_graph_search);
criterion_main!(benches);
