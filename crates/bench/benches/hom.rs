//! Criterion bench for the homomorphism engine: repeated containment checks
//! (same query pair, 1000×) through the slot-based engine with cached
//! relation indexes versus the retained pre-refactor `BTreeMap` engine, plus
//! single-shot homomorphism enumeration over a generated instance.

use bqr_bench::hom_bench;
use bqr_query::containment::ContainmentChecker;
use bqr_query::eval::Evaluator;
use bqr_query::hom::{enumerate_homomorphisms, reference, Assignment, MatchLimit};
use bqr_workload::movies;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;

/// The headline number: 1000 containment checks of the same pair.  The
/// baseline rebuilds canonical instance and indexes per check (pre-refactor
/// behaviour); the slot engine reuses both through a `ContainmentChecker`.
fn bench_repeated_containment(c: &mut Criterion) {
    const REPEATS: usize = 1_000;
    let mut group = c.benchmark_group("repeated_containment_1000x");
    group.sample_size(10);
    for case in hom_bench::cases() {
        group.bench_with_input(BenchmarkId::new("baseline", case.name), &case, |b, case| {
            b.iter(|| {
                for _ in 0..REPEATS {
                    let got =
                        hom_bench::reference_cq_contained_in(&case.q1, &case.q2, &case.schema);
                    assert_eq!(got, case.expected);
                }
            })
        });
        group.bench_with_input(
            BenchmarkId::new("slot_cached", case.name),
            &case,
            |b, case| {
                b.iter(|| {
                    let checker = ContainmentChecker::new(&case.schema);
                    for _ in 0..REPEATS {
                        let got = checker.cq_contained_in(&case.q1, &case.q2).unwrap();
                        assert_eq!(got, case.expected);
                    }
                })
            },
        );
    }
    group.finish();
}

/// One-shot enumeration over a generated movie instance: slot engine vs
/// reference engine, cold caches on both sides.
fn bench_enumeration(c: &mut Criterion) {
    let db = movies::generate(movies::MovieScale {
        persons: 2_000,
        movies: 500,
        n0: 50,
        seed: 11,
    });
    let rels: BTreeMap<String, &bqr_data::Relation> =
        db.relations().map(|r| (r.name().to_string(), r)).collect();
    let atoms = movies::q0().atoms().to_vec();
    let mut group = c.benchmark_group("hom_enumeration");
    group.sample_size(10);
    group.bench_function("slot", |b| {
        b.iter(|| {
            enumerate_homomorphisms(
                &atoms,
                &rels,
                &Assignment::new(),
                MatchLimit::AtMost(100_000),
            )
            .unwrap()
        })
    });
    group.bench_function("reference", |b| {
        b.iter(|| {
            reference::enumerate_homomorphisms(
                &atoms,
                &rels,
                &Assignment::new(),
                MatchLimit::AtMost(100_000),
            )
            .unwrap()
        })
    });
    group.finish();
}

/// Repeated CQ evaluation against one instance: a shared `Evaluator` (warm
/// index cache) vs the one-shot free function (cold cache per call).
fn bench_repeated_eval(c: &mut Criterion) {
    let db = movies::generate(movies::MovieScale {
        persons: 2_000,
        movies: 500,
        n0: 50,
        seed: 11,
    });
    let q0 = movies::q0();
    let mut group = c.benchmark_group("repeated_eval_100x");
    group.sample_size(10);
    group.bench_function("warm_evaluator", |b| {
        let evaluator = Evaluator::new();
        b.iter(|| {
            for _ in 0..100 {
                evaluator.eval_cq(&q0, &db, None).unwrap();
            }
        })
    });
    group.bench_function("cold_per_call", |b| {
        b.iter(|| {
            for _ in 0..100 {
                bqr_query::eval::eval_cq(&q0, &db, None).unwrap();
            }
        })
    });
    group.finish();
}

/// Planner cases: cyclic / skewed workloads evaluated under the PR 1
/// fixed-order engine versus the cost-based planner (generic join for the
/// triangle, selectivity-ordered probes for the chain).
fn bench_planner_vs_fixed_order(c: &mut Criterion) {
    use bqr_query::{JoinStrategy, PlannerConfig};

    let mut group = c.benchmark_group("planner_vs_fixed_order");
    group.sample_size(10);
    for case in hom_bench::eval_cases() {
        for (label, strategy) in [
            ("fixed_order", JoinStrategy::Heuristic),
            ("planner", JoinStrategy::Auto),
        ] {
            group.bench_with_input(BenchmarkId::new(label, case.name), &case, |b, case| {
                let evaluator =
                    Evaluator::new().with_planner(PlannerConfig::with_strategy(strategy));
                b.iter(|| evaluator.eval_cq(&case.query, &case.db, None).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_repeated_containment,
    bench_enumeration,
    bench_repeated_eval,
    bench_planner_vs_fixed_order
);
criterion_main!(benches);
