//! Criterion bench for experiment E4: the static analyses — topped-query
//! checking (PTIME effective syntax), element-query enumeration and the
//! exact VBRP search (exponential) — as problem parameters grow.

use bqr_bench::checker_with_annotations;
use bqr_core::decide::decide_vbrp;
use bqr_core::problem::{RewritingSetting, VbrpInstance};
use bqr_plan::PlanLanguage;
use bqr_query::element::element_queries;
use bqr_query::parser::parse_cq;
use bqr_query::{Budget, ViewSet};
use bqr_workload::cdr;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn chain_query(atoms: usize) -> bqr_query::ConjunctiveQuery {
    let mut body = String::from("Q(c1) :- calls(17, 1, c1, d0)");
    for i in 1..atoms {
        body.push_str(&format!(", calls(c{i}, 1, c{}, d{i})", i + 1));
    }
    parse_cq(&body).unwrap()
}

fn bench_topped_check(c: &mut Criterion) {
    let scale = cdr::CdrScale::default();
    let setting = cdr::setting(&scale, 200);
    let checker = checker_with_annotations(&setting, &cdr::view_bounds());
    let mut group = c.benchmark_group("topped_check");
    group.sample_size(20);
    for atoms in [2usize, 4, 8] {
        let q = chain_query(atoms);
        group.bench_with_input(BenchmarkId::from_parameter(atoms), &atoms, |b, _| {
            b.iter(|| checker.analyze_cq(&q).unwrap())
        });
    }
    group.finish();
}

fn bench_element_queries(c: &mut Criterion) {
    let scale = cdr::CdrScale::default();
    let schema = cdr::schema();
    let access = cdr::access_schema(&scale);
    let mut group = c.benchmark_group("element_queries");
    group.sample_size(20);
    for atoms in [2usize, 3, 4] {
        let q = chain_query(atoms);
        group.bench_with_input(BenchmarkId::from_parameter(atoms), &atoms, |b, _| {
            b.iter(|| element_queries(&q, &access, &schema, &Budget::generous()).unwrap())
        });
    }
    group.finish();
}

fn bench_exact_vbrp(c: &mut Criterion) {
    let schema = bqr_data::DatabaseSchema::with_relations(&[("rating", &["mid", "rank"])]).unwrap();
    let access = bqr_data::AccessSchema::new(vec![bqr_data::AccessConstraint::new(
        "rating",
        &["mid"],
        &["rank"],
        1,
    )
    .unwrap()]);
    let q = parse_cq("Q(r) :- rating(42, r)").unwrap();
    let mut group = c.benchmark_group("exact_vbrp");
    group.sample_size(10);
    for m in [3usize, 4] {
        let setting = RewritingSetting::new(schema.clone(), access.clone(), ViewSet::empty(), m);
        let inst = VbrpInstance::new(setting, q.clone());
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| decide_vbrp(&inst, PlanLanguage::Cq).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_topped_check,
    bench_element_queries,
    bench_exact_vbrp
);
criterion_main!(benches);
