//! Criterion bench for experiment E6: the CDR workload, bounded plans vs
//! naive evaluation.

use bqr_bench::{checker_with_annotations, plan_for, prepare};
use bqr_query::eval::eval_cq;
use bqr_workload::cdr;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_cdr(c: &mut Criterion) {
    let scale = cdr::CdrScale {
        customers: 4_000,
        days: 14,
        ..cdr::CdrScale::default()
    };
    let setting = cdr::setting(&scale, 120);
    let checker = checker_with_annotations(&setting, &cdr::view_bounds());
    let db = cdr::generate(scale);
    let (idb, cache) = prepare(&setting, db.clone());

    let mut group = c.benchmark_group("cdr");
    group.sample_size(10);
    for q in cdr::workload(17, 3) {
        let analysis = plan_for(&checker, &q.query);
        if let Some(plan) = analysis.plan.filter(|_| analysis.topped) {
            group.bench_with_input(BenchmarkId::new("bounded", q.name), &q.name, |b, _| {
                b.iter(|| bqr_plan::execute(&plan, &idb, &cache).unwrap())
            });
        }
        let query = q.query.clone();
        group.bench_with_input(BenchmarkId::new("naive", q.name), &q.name, |b, _| {
            b.iter(|| eval_cq(&query, &db, Some(&cache)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cdr);
criterion_main!(benches);
