//! # bqr-engine — the unified serving facade
//!
//! The paper's end-to-end story — given views `V`, an access schema `A` and
//! a query `Q`, decide boundedness, construct a topped/exact rewriting, and
//! evaluate it over a bounded fraction of `D` — used to take five crates and
//! six hand-threaded types.  This crate folds it into one object:
//!
//! * [`Engine`] — owns the configuration ([`Engine::builder`]: views,
//!   access schema, bound `M`, budget, planner, exec options, pipeline-cache
//!   capacity), the data ([`Engine::attach`] / [`Engine::mutate`]), and the
//!   request lifecycle;
//! * [`Engine::analyze`] — accepts a [`bqr_query::ConjunctiveQuery`], a
//!   [`bqr_query::FoQuery`], a [`bqr_query::UnionQuery`], or a **string** in
//!   the parser syntax, and returns an [`Analysis`]: the boundedness
//!   decision, the constructed plan, and `explain()` built on
//!   [`bqr_plan::Pipeline::describe`];
//! * [`Engine::prepare`] — registers a **named prepared statement** backed
//!   by the epoch-validated [`bqr_plan::PipelineCache`], with
//!   [`Engine::cache_stats`] surfacing hit/miss/invalidation counters;
//! * [`Engine::session`] — an **epoch-pinned [`Session`]** whose reads are
//!   snapshot-consistent across any number of `execute` calls, even while
//!   concurrent mutations bump relation epochs;
//! * [`Error`] — the one error type, wrapping every layer's error with the
//!   query / statement the request was about.
//!
//! On top of the static contract, executions run under **runtime
//! guardrails** ([`bqr_plan::guard`]): per-request deadlines, cancellation
//! tokens, intermediate-row budgets and fetch caps set on
//! [`bqr_plan::ExecOptions`] (or engine-wide via
//! [`EngineBuilder::guard_limits`]), with trips surfacing as typed
//! [`Error::Execution`] values and counted in [`Engine::guard_stats`].
//! Mutate-closure panics are contained ([`Error::MutationPanicked`]) and
//! every engine lock recovers from poisoning, so a panicking request can
//! never wedge the engine.
//!
//! ```
//! use bqr_engine::Engine;
//! use bqr_data::{tuple, AccessConstraint, AccessSchema, Database, DatabaseSchema};
//!
//! # fn main() -> bqr_engine::Result<()> {
//! let schema = DatabaseSchema::with_relations(&[("rating", &["mid", "rank"])])
//!     .map_err(bqr_engine::Error::Data)?;
//! let engine = Engine::builder()
//!     .schema(schema.clone())
//!     .access(AccessSchema::new(vec![
//!         AccessConstraint::new("rating", &["mid"], &["rank"], 1).unwrap(),
//!     ]))
//!     .bound(8)
//!     .build()?;
//!
//! let mut db = Database::empty(schema);
//! db.insert("rating", tuple![42, 5]).map_err(bqr_engine::Error::Data)?;
//! engine.attach(db)?;
//!
//! let analysis = engine.analyze("Q(r) :- rating(42, r)")?;
//! assert!(analysis.bounded());
//!
//! engine.prepare("rank_of_42", "Q(r) :- rating(42, r)")?;
//! let session = engine.session();
//! assert_eq!(session.execute("rank_of_42")?.tuples, vec![tuple![5]]);
//! # Ok(())
//! # }
//! ```

// The serving path must degrade with typed errors, never unwind: unwrap is
// flagged crate-wide (tests opt back in locally).
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod analysis;
mod engine;
mod error;
mod session;

pub use analysis::Analysis;
pub use engine::{Engine, EngineBuilder, IntoQuery, MaintenanceMode};
pub use error::{Error, Result};
pub use session::{EvalOutput, PreparedStatement, Session};

#[cfg(test)]
mod tests;
