//! The one error type of the serving facade.
//!
//! Every layer of the stack keeps its own precise error enum
//! ([`DataError`], [`QueryError`], [`PlanError`], [`CoreError`]); the facade
//! wraps them all into [`Error`], attaching the query or statement the
//! request was about, so a caller matches one type — and an error message
//! always says *which* request failed, not just *how*.

use bqr_core::CoreError;
use bqr_data::DataError;
use bqr_plan::PlanError;
use bqr_query::QueryError;
use std::error::Error as StdError;
use std::fmt;

/// Convenience result alias for the facade.
pub type Result<T> = std::result::Result<T, Error>;

/// Any error the serving facade can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A data-layer error (schemas, instances, indices).
    Data(DataError),
    /// A query-layer error (construction, static analysis).
    Query(QueryError),
    /// A plan-layer error (construction, compilation, execution).
    Plan(PlanError),
    /// A query string that did not parse.
    Parse {
        /// The offending input.
        input: String,
        /// The underlying parse error.
        source: QueryError,
    },
    /// The boundedness analysis of a query failed (as opposed to deciding
    /// "not bounded", which is a successful [`crate::Analysis`]).
    Analysis {
        /// The query under analysis.
        query: String,
        /// The underlying decision-layer error.
        source: CoreError,
    },
    /// A statement was prepared for a query that has no bounded rewriting in
    /// this engine's setting `(R, V, A, M)`.
    NoRewriting {
        /// The query that was to be prepared.
        query: String,
        /// The checker's rejection reason, when it produced one.
        reason: Option<String>,
    },
    /// Serving a plan — executing a named prepared statement, an ad-hoc
    /// query, or compiling a pipeline for `explain` — failed.
    Execution {
        /// The statement name, or the query text for ad-hoc / explain
        /// requests.
        statement: String,
        /// The underlying plan-layer error.
        source: PlanError,
    },
    /// No prepared statement is registered under this name.
    UnknownStatement(String),
    /// An attached database's schema differs from the engine's schema.
    SchemaMismatch(String),
    /// A [`crate::Engine::mutate`] closure panicked.  The panic was contained
    /// — nothing was published, the engine keeps serving the previous
    /// version, and the next mutate proceeds normally.
    MutationPanicked {
        /// The panic message, best-effort.
        message: String,
    },
}

impl Error {
    /// Wrap a parse failure with the input it was about.
    pub(crate) fn parse(input: &str, source: QueryError) -> Error {
        Error::Parse {
            input: input.to_string(),
            source,
        }
    }

    /// Wrap a decision-layer failure with the query it was about.
    pub(crate) fn analysis(query: impl fmt::Display, source: CoreError) -> Error {
        Error::Analysis {
            query: query.to_string(),
            source,
        }
    }

    /// Wrap an execution failure with the statement it was about.
    pub(crate) fn execution(statement: &str, source: PlanError) -> Error {
        Error::Execution {
            statement: statement.to_string(),
            source,
        }
    }

    /// The runtime-guardrail failure behind this error, when one fired
    /// (deadline, cancellation, budget, contained worker panic) — `None` for
    /// every other failure mode.  Lets callers match "the query was stopped
    /// by a guardrail" without unwrapping the layered error structure.
    pub fn exec_error(&self) -> Option<&bqr_plan::ExecError> {
        match self {
            Error::Plan(PlanError::Exec(e))
            | Error::Execution {
                source: PlanError::Exec(e),
                ..
            } => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Data(e) => write!(f, "{e}"),
            Error::Query(e) => write!(f, "{e}"),
            Error::Plan(e) => write!(f, "{e}"),
            Error::Parse { input, source } => {
                write!(f, "cannot parse query {input:?}: {source}")
            }
            Error::Analysis { query, source } => {
                write!(f, "analysis of `{query}` failed: {source}")
            }
            Error::NoRewriting { query, reason } => {
                write!(f, "`{query}` has no bounded rewriting in this setting")?;
                if let Some(reason) = reason {
                    write!(f, ": {reason}")?;
                }
                Ok(())
            }
            Error::Execution { statement, source } => {
                write!(f, "serving `{statement}` failed: {source}")
            }
            Error::UnknownStatement(name) => {
                write!(f, "no prepared statement is registered as `{name}`")
            }
            Error::SchemaMismatch(what) => {
                write!(
                    f,
                    "attached database does not match the engine schema: {what}"
                )
            }
            Error::MutationPanicked { message } => {
                write!(
                    f,
                    "a mutate closure panicked (nothing was published): {message}"
                )
            }
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Data(e) => Some(e),
            Error::Query(e) | Error::Parse { source: e, .. } => Some(e),
            Error::Plan(e) | Error::Execution { source: e, .. } => Some(e),
            Error::Analysis { source, .. } => Some(source),
            Error::NoRewriting { .. }
            | Error::UnknownStatement(_)
            | Error::SchemaMismatch(_)
            | Error::MutationPanicked { .. } => None,
        }
    }
}

impl From<DataError> for Error {
    fn from(e: DataError) -> Self {
        Error::Data(e)
    }
}

impl From<QueryError> for Error {
    fn from(e: QueryError) -> Self {
        Error::Query(e)
    }
}

impl From<PlanError> for Error {
    fn from(e: PlanError) -> Self {
        Error::Plan(e)
    }
}

impl From<CoreError> for Error {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::Plan(p) => Error::Plan(p),
            // Context-free conversion path; the facade's own call sites use
            // `Error::analysis` to attach the actual query.
            other => Error::Analysis {
                query: "<unspecified>".to_string(),
                source: other,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_request_context() {
        let e = Error::parse("Q(x :-", QueryError::Parse("oops".into()));
        assert!(e.to_string().contains("Q(x :-"));
        assert!(StdError::source(&e).is_some());

        let e = Error::analysis("Q(x) :- r(x)", CoreError::Undecided("budget".into()));
        assert!(e.to_string().contains("Q(x) :- r(x)"));
        assert!(e.to_string().contains("budget"));

        let e = Error::NoRewriting {
            query: "Q(x) :- r(x)".into(),
            reason: Some("no constraint covers `r`".into()),
        };
        assert!(e.to_string().contains("no bounded rewriting"));
        assert!(e.to_string().contains("covers"));

        let e = Error::execution("top5", PlanError::UnknownView("V".into()));
        assert!(e.to_string().contains("top5"));

        assert!(Error::UnknownStatement("x".into())
            .to_string()
            .contains('x'));
        assert!(Error::SchemaMismatch("extra relation".into())
            .to_string()
            .contains("extra"));

        let e = Error::MutationPanicked {
            message: "boom".into(),
        };
        assert!(e.to_string().contains("boom"));
        assert!(e.to_string().contains("nothing was published"));
    }

    #[test]
    fn exec_errors_are_reachable_through_the_accessor() {
        use bqr_plan::ExecError;
        let e = Error::execution(
            "top5",
            PlanError::Exec(ExecError::DeadlineExceeded { deadline_ms: 50 }),
        );
        assert_eq!(
            e.exec_error(),
            Some(&ExecError::DeadlineExceeded { deadline_ms: 50 })
        );
        assert!(e.to_string().contains("top5"), "{e}");
        assert!(e.to_string().contains("50 ms"), "{e}");
        let e = Error::execution("top5", PlanError::UnknownView("V".into()));
        assert!(e.exec_error().is_none());
    }

    #[test]
    fn layer_errors_convert() {
        let e: Error = DataError::UnknownRelation("r".into()).into();
        assert!(matches!(e, Error::Data(_)));
        let e: Error = QueryError::UnknownRelation("r".into()).into();
        assert!(matches!(e, Error::Query(_)));
        let e: Error = PlanError::UnknownView("V".into()).into();
        assert!(matches!(e, Error::Plan(_)));
        let e: Error = CoreError::Plan(PlanError::UnknownView("V".into())).into();
        assert!(matches!(e, Error::Plan(_)), "core plan errors flatten");
        let e: Error = CoreError::Undecided("m".into()).into();
        assert!(matches!(e, Error::Analysis { .. }));
    }
}
