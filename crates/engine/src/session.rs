//! Epoch-pinned sessions and named prepared statements.

use crate::engine::{Engine, IntoQuery};
use crate::error::{Error, Result};
use bqr_core::{Query, RewritingSetting};
use bqr_data::{Database, FetchStats, IndexedDatabase, Tuple};
use bqr_plan::{CancellationToken, ExecOptions, ExecOutput, Guard, PreparedPlan};
use bqr_query::eval::{eval_fo_counting, Evaluator};
use bqr_query::MaterializedViews;
use std::sync::Arc;

/// One immutable, published version of the engine's data: the instance, its
/// access indexes, and the materialised view extents, all built from the
/// same `Database` state.  Versions are shared by `Arc`: a session pins one
/// and every read through the session resolves against it, which is what
/// makes sessions snapshot-consistent for free — a concurrent
/// [`Engine::mutate`] publishes a *new* version (fresh relation epochs)
/// without touching this one.
#[derive(Debug)]
pub(crate) struct DataVersion {
    idb: IndexedDatabase,
    views: MaterializedViews,
}

impl DataVersion {
    /// Materialise the views and build the access indexes for `db`.
    pub(crate) fn build(db: Database, setting: &RewritingSetting) -> Result<DataVersion> {
        let views = setting.views.materialize(&db)?;
        let idb = IndexedDatabase::build(db, setting.access.clone())?;
        Ok(DataVersion { idb, views })
    }

    /// Build the successor of `prev` for `db = prev.database() + delta`
    /// without paying `O(|D|)`: view extents are maintained semi-naively
    /// from the delta and access indexes are patched or shared per relation.
    /// Relations and extents whose contents did not change keep their epochs
    /// — so epoch-keyed pipeline caches are invalidated only for pipelines
    /// that actually read a changed input.
    pub(crate) fn apply_delta(
        prev: &DataVersion,
        db: Database,
        delta: &bqr_data::DeltaLog,
        setting: &RewritingSetting,
    ) -> Result<DataVersion> {
        // Indexes and snapshots first: `apply_delta` anchors the patched
        // per-relation snapshots in the process-global registry, so the
        // residual evaluations inside `maintain` resolve every relation —
        // touched or not — to a warm snapshot instead of re-interning it.
        let idb = prev.idb.apply_delta(db, delta)?;
        let views = bqr_query::maintain::maintain(
            &setting.views,
            prev.views(),
            prev.database(),
            idb.database(),
            delta,
        )
        .map_err(Error::Query)?;
        Ok(DataVersion { idb, views })
    }

    pub(crate) fn database(&self) -> &Database {
        self.idb.database()
    }

    pub(crate) fn idb(&self) -> &IndexedDatabase {
        &self.idb
    }

    pub(crate) fn views(&self) -> &MaterializedViews {
        &self.views
    }
}

/// A named prepared statement: a bounded rewriting registered on the
/// engine's pipeline cache under a name.  The handle is cheap to clone and
/// `Sync`; executions go through [`Session`]s (or the [`Engine`] one-shot
/// helpers), which re-validate the relation/view epochs on every call and
/// recompile only when the data version actually changed.
#[derive(Debug, Clone)]
pub struct PreparedStatement {
    name: Arc<str>,
    query: Arc<Query>,
    plan: PreparedPlan,
}

impl PreparedStatement {
    pub(crate) fn new(name: &str, query: Query, plan: PreparedPlan) -> PreparedStatement {
        PreparedStatement {
            name: Arc::from(name),
            query: Arc::new(query),
            plan,
        }
    }

    /// The statement's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The query the statement answers.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The bounded plan behind the statement.
    pub fn plan(&self) -> &bqr_plan::QueryPlan {
        self.plan.plan()
    }

    /// The plan's canonical structural fingerprint (the plan half of the
    /// pipeline-cache key).
    pub fn fingerprint(&self) -> bqr_plan::PlanFingerprint {
        self.plan.fingerprint()
    }

    pub(crate) fn prepared(&self) -> &PreparedPlan {
        &self.plan
    }
}

/// The answers and I/O accounting of one naive evaluation — the facade's
/// counterpart of [`ExecOutput`] for the scan-based baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOutput {
    /// The answer tuples (sorted, duplicate-free).
    pub tuples: Vec<Tuple>,
    /// Base tuples scanned / view tuples read.
    pub stats: FetchStats,
}

/// An epoch-pinned read session.
///
/// A session pins the data version that was current when
/// [`Engine::session`] was called: every execution and evaluation through it
/// reads exactly that snapshot, even while concurrent [`Engine::mutate`]s
/// bump relation epochs and publish newer versions.  The
/// `(fingerprint, options, epoch-vector)` cache key cannot change under a
/// pinned version, so repeated executions are typically warm as well — but
/// warmth is best-effort, not guaranteed: a *newer* version's first
/// execution sweeps the superseded entry, after which the pinned session's
/// next execution transparently recompiles (same answer, one extra miss).
///
/// Statement *names* resolve against the engine at call time (a re-prepared
/// statement is picked up); the *data* never moves.  Drop the session and
/// open a new one to observe later versions.
#[derive(Debug)]
pub struct Session<'e> {
    engine: &'e Engine,
    version: Arc<DataVersion>,
}

impl<'e> Session<'e> {
    pub(crate) fn new(engine: &'e Engine, version: Arc<DataVersion>) -> Session<'e> {
        Session { engine, version }
    }

    /// The engine this session reads from.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    /// The pinned instance.
    pub fn database(&self) -> &Database {
        self.version.database()
    }

    /// The pinned materialised view extents.
    pub fn views(&self) -> &MaterializedViews {
        self.version.views()
    }

    /// The epoch of every relation of the pinned instance, in name order —
    /// constant for the lifetime of the session (the pin, observably).
    pub fn epochs(&self) -> Vec<(String, u64)> {
        self.version
            .database()
            .epochs()
            .map(|(name, epoch)| (name.to_string(), epoch))
            .collect()
    }

    /// Execute a named prepared statement against the pinned version under
    /// the engine's default [`ExecOptions`].
    pub fn execute(&self, name: &str) -> Result<ExecOutput> {
        self.execute_with(name, &self.engine.exec_options())
    }

    /// [`execute`](Session::execute) under explicit options.
    pub fn execute_with(&self, name: &str, options: &ExecOptions) -> Result<ExecOutput> {
        let statement = self.engine.statement(name)?;
        self.execute_statement_with(&statement, options)
    }

    /// Execute a [`PreparedStatement`] handle directly (no name lookup).
    pub fn execute_statement(&self, statement: &PreparedStatement) -> Result<ExecOutput> {
        self.execute_statement_with(statement, &self.engine.exec_options())
    }

    /// [`execute`](Session::execute) honouring a caller-held
    /// [`CancellationToken`]: trip it from any thread and the execution
    /// stops at its next checkpoint with
    /// [`bqr_plan::ExecError::Cancelled`] wrapped in
    /// [`Error::Execution`](crate::Error::Execution).
    pub fn execute_with_token(
        &self,
        name: &str,
        options: &ExecOptions,
        token: CancellationToken,
    ) -> Result<ExecOutput> {
        let statement = self.engine.statement(name)?;
        self.execute_statement_guarded(&statement, options, token)
    }

    /// [`execute_statement`](Session::execute_statement) under explicit
    /// options.
    pub fn execute_statement_with(
        &self,
        statement: &PreparedStatement,
        options: &ExecOptions,
    ) -> Result<ExecOutput> {
        self.execute_statement_guarded(statement, options, CancellationToken::new())
    }

    /// The fully general execution path: explicit options plus a caller-held
    /// cancellation token, with guardrail limits from `options.limits`
    /// enforced and trips recorded in the engine's
    /// [`guard_stats`](Engine::guard_stats).
    pub fn execute_statement_guarded(
        &self,
        statement: &PreparedStatement,
        options: &ExecOptions,
        token: CancellationToken,
    ) -> Result<ExecOutput> {
        let guard = Guard::with_token(&options.limits, token)
            .with_metrics(std::sync::Arc::clone(self.engine.guard_metrics()));
        statement
            .prepared()
            .execute_guarded(self.version.idb(), self.version.views(), options, &guard)
            .map_err(|e| Error::execution(statement.name(), e))
    }

    /// Analyse an ad-hoc query and execute its bounded plan against the
    /// pinned version, without registering a statement.  Fails with
    /// [`Error::NoRewriting`] when the query is not topped by the setting.
    pub fn query<Q: IntoQuery>(&self, query: Q) -> Result<ExecOutput> {
        let analysis = self.engine.analyze(query)?;
        let plan = analysis.bounded_plan()?.clone();
        let prepared = PreparedPlan::with_cache(plan, Arc::clone(self.engine.cache()));
        let options = self.engine.exec_options();
        let guard =
            Guard::new(&options.limits).with_metrics(Arc::clone(self.engine.guard_metrics()));
        prepared
            .execute_guarded(self.version.idb(), self.version.views(), &options, &guard)
            .map_err(|e| Error::execution(&analysis.query().to_string(), e))
    }

    /// Naively evaluate a query against the pinned version: base relations
    /// are scanned, view extents read — the paper's "no bounded rewriting"
    /// baseline, with the same [`FetchStats`] accounting the bounded plans
    /// report, so the two are directly comparable.
    pub fn evaluate<Q: IntoQuery>(&self, query: Q) -> Result<EvalOutput> {
        let query = query.into_query()?;
        let db = self.version.database();
        let views = Some(self.version.views());
        let mut stats = FetchStats::new();
        let evaluator = Evaluator::new().with_planner(self.engine.setting().planner);
        let tuples = match &query {
            Query::Cq(cq) => evaluator.eval_cq_counting(cq, db, views, &mut stats),
            Query::Ucq(ucq) => evaluator.eval_ucq_counting(ucq, db, views, &mut stats),
            Query::Fo(fo) => eval_fo_counting(fo, db, views, &mut stats),
        }
        .map_err(Error::Query)?;
        Ok(EvalOutput { tuples, stats })
    }
}
