//! The [`Engine`]: configuration, data, and the request lifecycle.

use crate::analysis::Analysis;
use crate::error::{Error, Result};
use crate::session::{DataVersion, PreparedStatement, Session};
use bqr_core::{
    decide_vbrp, BoundedOutputOracle, DecisionOutcome, Query, RewritingSetting, ToppedChecker,
    VbrpInstance,
};
use bqr_data::{AccessSchema, Database, DatabaseSchema};
use bqr_plan::{
    panic_message, CacheStats, ExecOptions, GuardLimits, GuardMetrics, GuardStats, PipelineCache,
    PlanLanguage, PreparedPlan,
};
use bqr_query::parser::parse_ucq;
use bqr_query::{Budget, ConjunctiveQuery, FoQuery, PlannerConfig, UnionQuery, ViewSet};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, PoisonError, RwLock};

/// Anything [`Engine::analyze`] / [`Engine::prepare`] accept as a query: the
/// AST types of the stack ([`ConjunctiveQuery`], [`UnionQuery`], [`FoQuery`],
/// [`Query`]) or a string in the datalog-style syntax of
/// [`bqr_query::parser`] (several `;`/newline-separated rules parse as a
/// union).
pub trait IntoQuery {
    /// Convert into the paper's query sum type.
    fn into_query(self) -> Result<Query>;
}

impl IntoQuery for Query {
    fn into_query(self) -> Result<Query> {
        Ok(self)
    }
}

impl IntoQuery for ConjunctiveQuery {
    fn into_query(self) -> Result<Query> {
        Ok(Query::Cq(self))
    }
}

impl IntoQuery for UnionQuery {
    fn into_query(self) -> Result<Query> {
        // A one-disjunct union is just its CQ; classifying it as such keeps
        // the analyses on the cheaper CQ paths.
        if self.len() == 1 {
            Ok(Query::Cq(self.disjuncts()[0].clone()))
        } else {
            Ok(Query::Ucq(self))
        }
    }
}

impl IntoQuery for FoQuery {
    fn into_query(self) -> Result<Query> {
        Ok(Query::Fo(self))
    }
}

impl IntoQuery for &str {
    fn into_query(self) -> Result<Query> {
        parse_ucq(self)
            .map_err(|e| Error::parse(self, e))?
            .into_query()
    }
}

impl IntoQuery for String {
    fn into_query(self) -> Result<Query> {
        self.as_str().into_query()
    }
}

impl<T: IntoQuery + Clone> IntoQuery for &T {
    fn into_query(self) -> Result<Query> {
        self.clone().into_query()
    }
}

/// How [`Engine::mutate`] turns a committed closure into the next published
/// [`DataVersion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaintenanceMode {
    /// Maintain view extents semi-naively from the captured write delta and
    /// patch/share access indexes per relation — `O(|Δ|)` for exact deltas.
    /// Untouched relations and unchanged extents keep their epochs, so only
    /// pipelines reading a changed input are invalidated.
    #[default]
    Delta,
    /// Rebuild the whole version from scratch (re-materialise every view,
    /// rebuild every index) — the pre-delta behaviour, kept as the
    /// differential-testing and benchmarking baseline.
    Rebuild,
}

/// Builder for an [`Engine`]; start from [`Engine::builder`].
///
/// The rewriting parameters `(R, V, A, M)` plus the analysis budget and the
/// join-planner configuration form the paper's [`RewritingSetting`]; on top
/// of those the builder configures the *serving* side: default
/// [`ExecOptions`], the pipeline-cache capacity, and per-view output-bound
/// annotations for the topped checker's oracle.
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    schema: DatabaseSchema,
    access: AccessSchema,
    views: ViewSet,
    bound_m: usize,
    budget: Budget,
    planner: PlannerConfig,
    options: ExecOptions,
    cache_capacity: usize,
    view_bounds: Vec<(String, usize)>,
    maintenance: MaintenanceMode,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            schema: DatabaseSchema::default(),
            access: AccessSchema::empty(),
            views: ViewSet::empty(),
            bound_m: 64,
            budget: Budget::generous(),
            planner: PlannerConfig::default(),
            options: ExecOptions::serial(),
            cache_capacity: bqr_plan::prepared::DEFAULT_CACHE_CAPACITY,
            view_bounds: Vec::new(),
            maintenance: MaintenanceMode::default(),
        }
    }
}

impl EngineBuilder {
    /// Replace the database schema `R`.
    pub fn schema(mut self, schema: DatabaseSchema) -> Self {
        self.schema = schema;
        self
    }

    /// Replace the access schema `A`.
    pub fn access(mut self, access: AccessSchema) -> Self {
        self.access = access;
        self
    }

    /// Replace the view set `V`.
    pub fn views(mut self, views: ViewSet) -> Self {
        self.views = views;
        self
    }

    /// Replace the plan-size bound `M`.
    pub fn bound(mut self, bound_m: usize) -> Self {
        self.bound_m = bound_m;
        self
    }

    /// Replace the budget for the worst-case-exponential analyses.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Replace the join-planner configuration used by every homomorphism
    /// search (containment, `A`-equivalence, naive evaluation).
    pub fn planner(mut self, planner: PlannerConfig) -> Self {
        self.planner = planner;
        self
    }

    /// Replace the default [`ExecOptions`] every execution runs under
    /// (override per call with the `*_with` methods).
    pub fn exec_options(mut self, options: ExecOptions) -> Self {
        self.options = options;
        self
    }

    /// Default to morsel-parallel execution with the worker count chosen
    /// per operator from its input cardinalities — shorthand for
    /// `exec_options(ExecOptions::parallel_auto())`, keeping any
    /// previously-set [`GuardLimits`].
    pub fn parallel_auto(mut self) -> Self {
        let limits = self.options.limits;
        self.options = ExecOptions::parallel_auto();
        self.options.limits = limits;
        self
    }

    /// Set the default runtime [`GuardLimits`] (deadline, intermediate-row
    /// budget, fetch cap) on the engine's default [`ExecOptions`] —
    /// shorthand for `exec_options(options.with_…)`; override per call with
    /// the `*_with` methods.
    pub fn guard_limits(mut self, limits: GuardLimits) -> Self {
        self.options.limits = limits;
        self
    }

    /// Replace the capacity of the engine's [`PipelineCache`].
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Choose how mutations publish new versions (defaults to
    /// [`MaintenanceMode::Delta`]).
    pub fn maintenance(mut self, mode: MaintenanceMode) -> Self {
        self.maintenance = mode;
        self
    }

    /// Declare `|V(D)| ≤ bound` for a view, feeding the topped checker's
    /// bounded-output oracle (the Example 3.3 situation: a view that is not
    /// *provably* bounded under `A` but is known bounded by the application).
    pub fn annotate_view_bound(mut self, view: impl Into<String>, bound: usize) -> Self {
        self.view_bounds.push((view.into(), bound));
        self
    }

    /// Adopt all four rewriting parameters (and budget / planner) from an
    /// existing [`RewritingSetting`].
    pub fn setting(mut self, setting: RewritingSetting) -> Self {
        self.schema = setting.schema;
        self.access = setting.access;
        self.views = setting.views;
        self.bound_m = setting.bound_m;
        self.budget = setting.budget;
        self.planner = setting.planner;
        self
    }

    /// Validate the configuration and build the engine (with an empty
    /// instance attached; see [`Engine::attach`]).
    pub fn build(self) -> Result<Engine> {
        let setting = RewritingSetting {
            schema: self.schema,
            access: self.access,
            views: self.views,
            bound_m: self.bound_m,
            budget: self.budget,
            planner: self.planner,
        };
        setting
            .validate()
            .map_err(|e| Error::analysis("<engine configuration>", e))?;
        let empty = Database::empty(setting.schema.clone());
        let version = DataVersion::build(empty, &setting)?;
        Ok(Engine {
            setting,
            options: self.options,
            view_bounds: self.view_bounds,
            maintenance: self.maintenance,
            cache: Arc::new(PipelineCache::new(self.cache_capacity)),
            guard_metrics: Arc::new(GuardMetrics::new()),
            data: RwLock::new(Arc::new(version)),
            writers: std::sync::Mutex::new(()),
            statements: RwLock::new(BTreeMap::new()),
        })
    }
}

/// The unified serving facade: one object owning the rewriting setting
/// `(R, V, A, M)`, the data, the pipeline cache, and the named prepared
/// statements — the full request lifecycle of the paper behind three calls:
///
/// * [`analyze`](Engine::analyze) — is this query boundedly rewritable here,
///   and with what plan?
/// * [`prepare`](Engine::prepare) — register the rewriting as a named
///   statement served through the epoch-validated [`PipelineCache`];
/// * [`session`](Engine::session) — an epoch-pinned snapshot to execute
///   against, consistent across calls even under concurrent
///   [`mutate`](Engine::mutate)s.
///
/// The engine is `Sync`: share it behind an `Arc` (or plain reference with
/// scoped threads) between any number of serving threads and mutators.
pub struct Engine {
    setting: RewritingSetting,
    options: ExecOptions,
    view_bounds: Vec<(String, usize)>,
    maintenance: MaintenanceMode,
    cache: Arc<PipelineCache>,
    /// Engine-lifetime guardrail counters, shared into every guarded
    /// execution; snapshot with [`Engine::guard_stats`].
    guard_metrics: Arc<GuardMetrics>,
    data: RwLock<Arc<DataVersion>>,
    /// Serialises writers ([`Engine::attach`] / [`Engine::mutate`]) against
    /// each other *without* holding the `data` lock: the expensive version
    /// rebuild happens under this mutex only, and the `data` write lock is
    /// taken just for the `Arc` swap — readers never wait behind a rebuild.
    writers: std::sync::Mutex<()>,
    statements: RwLock<BTreeMap<String, PreparedStatement>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("bound_m", &self.setting.bound_m)
            .field("views", &self.setting.views.len())
            .field("statements", &self.statement_names())
            .field("cache", &self.cache)
            .finish()
    }
}

impl Engine {
    /// Start building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// An engine adopting every parameter of a [`RewritingSetting`], with
    /// default serving options.
    pub fn for_setting(setting: RewritingSetting) -> Result<Engine> {
        EngineBuilder::default().setting(setting).build()
    }

    /// The rewriting setting `(R, V, A, M)` plus budget and planner.
    pub fn setting(&self) -> &RewritingSetting {
        &self.setting
    }

    /// The default execution options.
    pub fn exec_options(&self) -> ExecOptions {
        self.options
    }

    /// The engine's pipeline cache.
    pub fn cache(&self) -> &Arc<PipelineCache> {
        &self.cache
    }

    /// A point-in-time snapshot of the pipeline cache's counters
    /// (hits / misses / lookups / invalidations / evictions).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// A point-in-time snapshot of the engine-lifetime guardrail counters:
    /// cancellations, deadline / budget trips, contained panics and serial
    /// fallbacks — [`cache_stats`](Engine::cache_stats)' runtime-governance
    /// sibling.
    pub fn guard_stats(&self) -> GuardStats {
        self.guard_metrics.stats()
    }

    pub(crate) fn guard_metrics(&self) -> &Arc<GuardMetrics> {
        &self.guard_metrics
    }

    // ------------------------------------------------------------------
    // Data lifecycle.

    /// Attach a database instance, replacing the current one.  Views are
    /// re-materialised and access indexes rebuilt; sessions pinned to the
    /// previous version keep reading it unchanged.
    pub fn attach(&self, db: Database) -> Result<()> {
        if db.schema() != &self.setting.schema {
            return Err(Error::SchemaMismatch(format!(
                "expected the engine schema ({} relations)",
                self.setting.schema.relations().count()
            )));
        }
        let _serialised = self.writers.lock().unwrap_or_else(PoisonError::into_inner);
        let version = Arc::new(DataVersion::build(db, &self.setting)?);
        *self.data.write().unwrap_or_else(PoisonError::into_inner) = version;
        Ok(())
    }

    /// Mutate the current instance through a closure and publish the result
    /// as a fresh version.  The closure sees a copy-on-write clone of the
    /// live instance (no per-relation copying until its first genuine
    /// write), and its per-relation write delta is captured as it runs;
    /// under the default [`MaintenanceMode::Delta`] the next version is then
    /// built in `O(|Δ|)`: view extents are maintained semi-naively, access
    /// indexes are patched or shared per relation, and only the relations
    /// (and view extents) whose contents actually changed get fresh epochs —
    /// so a write to relation `R` invalidates exactly the cached pipelines
    /// whose epoch vector mentions `R`.  A closure whose net delta is empty
    /// (read-only, re-inserting present tuples, do-undo pairs) publishes
    /// nothing at all: no epoch moves, no pipeline is invalidated.
    ///
    /// The publish is **all-or-nothing**: when the closure fails — or
    /// *panics*; the panic is contained and surfaces as
    /// [`Error::MutationPanicked`] — nothing is published and the error is
    /// returned: a half-applied mutation (or half-applied delta) can never
    /// become a live version, and a panicking closure can never wedge the
    /// writers lock (poisoned locks are recovered throughout the engine).
    /// Mutations are serialised against each other, but version construction
    /// runs outside the read path's lock: concurrent reads (sessions,
    /// analyses) proceed against the previous version throughout, and
    /// closures may freely call the engine's read methods.
    pub fn mutate<R>(&self, f: impl FnOnce(&mut Database) -> bqr_data::Result<R>) -> Result<R> {
        let _serialised = self.writers.lock().unwrap_or_else(PoisonError::into_inner);
        let prev = Arc::clone(&self.data.read().unwrap_or_else(PoisonError::into_inner));
        // O(#relations), not O(|D|): relations share tuple storage with the
        // live version until the closure's first genuine write forks them.
        let mut db = prev.database().clone();
        db.begin_delta_tracking();
        // Contain closure panics: `db` is a scratch clone, so abandoning it
        // mid-mutation is safe, and nothing has been published yet.
        let out = catch_unwind(AssertUnwindSafe(|| {
            bqr_data::faults::check(bqr_data::faults::sites::MUTATE_CLOSURE)?;
            f(&mut db)
        }))
        .map_err(|payload| Error::MutationPanicked {
            message: panic_message(payload.as_ref()),
        })?
        .map_err(Error::Data)?;
        let delta = db.take_delta(prev.database());
        if delta.is_empty() {
            // No-op elision: nothing changed, so the current version — and
            // every epoch, snapshot, index and cached pipeline keyed off it
            // — is still exact.  Publish nothing.
            return Ok(out);
        }
        // Version construction is panic-contained like the closure: an
        // injected (or genuine) panic inside delta application must surface
        // as a typed error with nothing published, never as a half-applied
        // version or a wedged writer.
        let version = catch_unwind(AssertUnwindSafe(|| match self.maintenance {
            MaintenanceMode::Delta => DataVersion::apply_delta(&prev, db, &delta, &self.setting),
            MaintenanceMode::Rebuild => DataVersion::build(db, &self.setting),
        }))
        .map_err(|payload| Error::MutationPanicked {
            message: panic_message(payload.as_ref()),
        })??;
        *self.data.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(version);
        Ok(out)
    }

    /// Apply a burst of mutation closures in **one** delta-tracked version
    /// publish: the copy-on-write relation fork, the net-delta extraction,
    /// the index/snapshot patching and the semi-naive view maintenance all
    /// run once for the whole batch instead of once per closure — the
    /// amortisation the serving front's write batching rides on.
    ///
    /// Isolation is per closure, atomicity per batch: each closure runs
    /// after an `O(|Δ|)` checkpoint of the tracked write state
    /// ([`Database::delta_checkpoint`]), so a closure that errors or panics
    /// has its writes undone by inverse operations without disturbing its
    /// neighbours — its slot in the returned `Vec` carries the typed error,
    /// every other closure's effect still publishes.  The combined net delta
    /// becomes visible in a single version swap: readers never observe a
    /// prefix of the batch.  An empty or net-no-op batch publishes nothing
    /// (the usual no-op elision).
    ///
    /// The outer `Result` fails only when nothing was published at all:
    /// version construction failed (index rebuild or view maintenance
    /// error/panic), or a *failing* closure had also replaced a relation
    /// wholesale — losing the write history a rollback needs
    /// ([`bqr_data::DataError::RollbackHistoryLost`]).
    pub fn mutate_batch<R, F>(
        &self,
        closures: impl IntoIterator<Item = F>,
    ) -> Result<Vec<Result<R>>>
    where
        F: FnOnce(&mut Database) -> bqr_data::Result<R>,
    {
        let _serialised = self.writers.lock().unwrap_or_else(PoisonError::into_inner);
        let prev = Arc::clone(&self.data.read().unwrap_or_else(PoisonError::into_inner));
        let mut db = prev.database().clone();
        db.begin_delta_tracking();
        let mut outcomes = Vec::new();
        for f in closures {
            // Checkpoint before each closure: an O(|Δ|) capture of the
            // tracked write state, NOT a `Database::clone` — a clone would
            // keep every tuple `Arc` shared, forcing the closure's first
            // write to copy the whole relation and costing the batch its
            // one-publish advantage.  A failing closure's writes are undone
            // by inverse operations; if that closure also replaced a
            // relation wholesale (history lost, not invertible), the whole
            // batch fails and nothing is published.
            let checkpoint = db.delta_checkpoint();
            let out = catch_unwind(AssertUnwindSafe(|| {
                bqr_data::faults::check(bqr_data::faults::sites::MUTATE_CLOSURE)?;
                f(&mut db)
            }))
            .map_err(|payload| Error::MutationPanicked {
                message: panic_message(payload.as_ref()),
            })
            .and_then(|r| r.map_err(Error::Data));
            if out.is_err() {
                db.rollback_to(&checkpoint).map_err(Error::Data)?;
            }
            outcomes.push(out);
        }
        let delta = db.take_delta(prev.database());
        if delta.is_empty() {
            return Ok(outcomes);
        }
        let version = catch_unwind(AssertUnwindSafe(|| match self.maintenance {
            MaintenanceMode::Delta => DataVersion::apply_delta(&prev, db, &delta, &self.setting),
            MaintenanceMode::Rebuild => DataVersion::build(db, &self.setting),
        }))
        .map_err(|payload| Error::MutationPanicked {
            message: panic_message(payload.as_ref()),
        })??;
        *self.data.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(version);
        Ok(outcomes)
    }

    /// A clone of the currently attached instance.
    pub fn database(&self) -> Database {
        self.data
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .database()
            .clone()
    }

    /// An epoch-pinned session over the current version: every read through
    /// it — prepared statements, ad-hoc queries, naive evaluation — sees the
    /// same snapshot, no matter how many [`mutate`](Engine::mutate)s land
    /// concurrently.  Sessions are cheap (one `Arc` clone).
    pub fn session(&self) -> Session<'_> {
        Session::new(
            self,
            Arc::clone(&self.data.read().unwrap_or_else(PoisonError::into_inner)),
        )
    }

    // ------------------------------------------------------------------
    // Analysis.

    /// The topped checker for this engine's setting, with the configured
    /// view-bound annotations.
    fn checker(&self) -> ToppedChecker<'_> {
        let mut oracle = BoundedOutputOracle::new(
            self.setting.schema.clone(),
            self.setting.access.clone(),
            self.setting.budget,
        );
        for (view, bound) in &self.view_bounds {
            oracle.annotate_view(view, *bound);
        }
        ToppedChecker::with_oracle(&self.setting, oracle)
    }

    /// Analyse a query: run the PTIME effective-syntax checker and return an
    /// [`Analysis`] exposing the boundedness decision, the constructed plan,
    /// and [`explain`](Analysis::explain) / [`execute`](Analysis::execute)
    /// against the data version current at this call.
    pub fn analyze<Q: IntoQuery>(&self, query: Q) -> Result<Analysis> {
        let query = query.into_query()?;
        let checker = self.checker();
        let topped = match &query {
            Query::Cq(cq) => checker.analyze_cq(cq),
            other => {
                let fo = other
                    .to_fo()
                    .map_err(|e| Error::analysis(other, bqr_core::CoreError::from(e)))?;
                checker.analyze(&fo)
            }
        }
        .map_err(|e| Error::analysis(&query, e))?;
        Ok(Analysis::new(
            query,
            topped,
            Arc::clone(&self.data.read().unwrap_or_else(PoisonError::into_inner)),
            Arc::clone(&self.cache),
            self.options,
            Arc::clone(&self.guard_metrics),
        ))
    }

    /// Run the exact (worst-case exponential, budgeted) decision procedure
    /// for `VBRP` on a query, looking for a plan in `target`.  The PTIME
    /// check behind [`analyze`](Engine::analyze) is sound but incomplete;
    /// this is the complete-but-expensive counterpart for small instances.
    ///
    /// To serve the witness through *this* engine's cache (so it shows up in
    /// [`cache_stats`](Engine::cache_stats) and respects the configured
    /// capacity), hand it to
    /// `outcome.prepare_with(Arc::clone(engine.cache()))` — the outcome's
    /// bare `prepare()` registers on the process-global cache instead.
    ///
    /// An exhausted analysis [`Budget`](bqr_query::Budget) (or an input
    /// outside the decidable fragment) surfaces as [`Error::Analysis`]
    /// naming the query — the facade refuses rather than answer "unknown";
    /// callers who want to inspect the undecided outcome itself can run
    /// [`bqr_core::decide::decide_vbrp`] directly.
    pub fn decide<Q: IntoQuery>(&self, query: Q, target: PlanLanguage) -> Result<DecisionOutcome> {
        let query = query.into_query()?;
        let display = query.to_string();
        let instance = VbrpInstance::new(self.setting.clone(), query);
        match decide_vbrp(&instance, target) {
            Ok(DecisionOutcome::Unknown(why)) => Err(Error::analysis(
                display,
                bqr_core::CoreError::Undecided(why),
            )),
            Ok(outcome) => Ok(outcome),
            Err(e) => Err(Error::analysis(display, e)),
        }
    }

    // ------------------------------------------------------------------
    // Prepared statements.

    /// Analyse a query and register its bounded plan as a named prepared
    /// statement on the engine's pipeline cache.  Fails with
    /// [`Error::NoRewriting`] when the query is not topped by the setting
    /// (use [`analyze`](Engine::analyze) first to inspect why).
    ///
    /// Re-preparing an existing name replaces the statement; sessions always
    /// resolve names at execution time.  When an [`Analysis`] is already in
    /// hand, [`prepare_from`](Engine::prepare_from) registers it without
    /// re-running the checker.
    pub fn prepare<Q: IntoQuery>(&self, name: &str, query: Q) -> Result<PreparedStatement> {
        let analysis = self.analyze(query)?;
        self.prepare_from(name, &analysis)
    }

    /// Register an already-analysed query as a named prepared statement —
    /// the analyse-once half of the `analyze` → `prepare` flow (no second
    /// checker run).
    pub fn prepare_from(&self, name: &str, analysis: &Analysis) -> Result<PreparedStatement> {
        let plan = analysis.bounded_plan()?.clone();
        let statement = PreparedStatement::new(
            name,
            analysis.query().clone(),
            PreparedPlan::with_cache(plan, Arc::clone(&self.cache)),
        );
        self.statements
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_string(), statement.clone());
        Ok(statement)
    }

    /// The prepared statement registered under `name`.
    pub fn statement(&self, name: &str) -> Result<PreparedStatement> {
        self.statements
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
            .ok_or_else(|| Error::UnknownStatement(name.to_string()))
    }

    /// The names of every registered prepared statement, sorted.
    pub fn statement_names(&self) -> Vec<String> {
        self.statements
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect()
    }

    /// Remove a prepared statement; returns whether it existed.  (Its cached
    /// pipelines age out of the LRU cache naturally.)
    pub fn forget(&self, name: &str) -> bool {
        self.statements
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(name)
            .is_some()
    }

    // ------------------------------------------------------------------
    // One-shot conveniences (each opens a fresh single-use session).

    /// Execute a named prepared statement against the current data version.
    pub fn execute(&self, name: &str) -> Result<bqr_plan::ExecOutput> {
        self.session().execute(name)
    }

    /// Naively evaluate a query against the current data version (the
    /// "commercial engine" baseline: scans base relations, reads view
    /// extents) — the oracle bounded plans are compared against.
    pub fn evaluate<Q: IntoQuery>(&self, query: Q) -> Result<crate::session::EvalOutput> {
        self.session().evaluate(query)
    }
}
