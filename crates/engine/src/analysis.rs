//! The result of [`Engine::analyze`](crate::Engine::analyze).

use crate::error::{Error, Result};
use crate::session::DataVersion;
use bqr_core::{Query, ToppedAnalysis};
use bqr_plan::{
    CancellationToken, ExecOptions, ExecOutput, Guard, GuardMetrics, PipelineCache, PreparedPlan,
    QueryPlan,
};
use std::sync::Arc;

/// The boundedness analysis of one query, pinned to the data version that
/// was current when [`Engine::analyze`](crate::Engine::analyze) ran.
///
/// Exposes the decision ([`bounded`](Analysis::bounded) plus
/// [`reason`](Analysis::reason) on rejection), the constructed plan and its
/// static measures ([`plan_size`](Analysis::plan_size),
/// [`fetch_bound`](Analysis::fetch_bound) — the paper's `size(Q_ε, Q)` and
/// `|D_ξ|` bound), and two dynamic views of the plan against the pinned
/// data: [`explain`](Analysis::explain) (the compiled operator pipeline,
/// one operator per line) and [`execute`](Analysis::execute).
#[derive(Debug)]
pub struct Analysis {
    query: Query,
    inner: ToppedAnalysis,
    version: Arc<DataVersion>,
    cache: Arc<PipelineCache>,
    options: ExecOptions,
    guard_metrics: Arc<GuardMetrics>,
}

impl Analysis {
    pub(crate) fn new(
        query: Query,
        inner: ToppedAnalysis,
        version: Arc<DataVersion>,
        cache: Arc<PipelineCache>,
        options: ExecOptions,
        guard_metrics: Arc<GuardMetrics>,
    ) -> Analysis {
        Analysis {
            query,
            inner,
            version,
            cache,
            options,
            guard_metrics,
        }
    }

    /// The analysed query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Is the query topped by the engine's `(R, V, A, M)` — i.e. does it
    /// have an `M`-bounded rewriting this engine can construct and serve?
    pub fn bounded(&self) -> bool {
        self.inner.topped
    }

    /// The constructed bounded plan.  Present whenever the constructive
    /// checker succeeded — even when the plan exceeds `M`
    /// ([`bounded`](Analysis::bounded) is then `false`), so callers can see
    /// how far over budget the query is.
    pub fn plan(&self) -> Option<&QueryPlan> {
        self.inner.plan.as_ref()
    }

    /// The size of the constructed plan (the paper's `size(Q_ε, Q)`).
    pub fn plan_size(&self) -> Option<usize> {
        self.inner.plan_size
    }

    /// Worst-case bound on the base tuples the plan fetches (`|D_ξ|`).
    pub fn fetch_bound(&self) -> Option<usize> {
        self.inner.fetch_bound
    }

    /// Why the query was rejected (or why the plan exceeds `M`), when it
    /// was.
    pub fn reason(&self) -> Option<&str> {
        self.inner.reason.as_deref()
    }

    /// The underlying checker output.
    pub fn topped_analysis(&self) -> &ToppedAnalysis {
        &self.inner
    }

    /// The constructed plan when the query is bounded, or the typed
    /// [`Error::NoRewriting`] rejection.  The single gate every serving
    /// path goes through ([`execute`](Analysis::execute),
    /// [`explain`](Analysis::explain),
    /// [`Engine::prepare`](crate::Engine::prepare),
    /// [`Session::query`](crate::Session::query)): a plan that exists but
    /// exceeds `M` is *not* served — inspect it via
    /// [`plan`](Analysis::plan).
    pub fn bounded_plan(&self) -> Result<&QueryPlan> {
        match (self.bounded(), self.plan()) {
            (true, Some(plan)) => Ok(plan),
            _ => Err(Error::NoRewriting {
                query: self.query.to_string(),
                reason: self.reason().map(str::to_string),
            }),
        }
    }

    /// The compiled operator pipeline of the plan over the pinned data
    /// version, one operator per line (built on
    /// [`bqr_plan::Pipeline::describe`]).  Compilation goes through the
    /// engine's pipeline cache, so explaining a statement the engine already
    /// serves is free — and executing an explained plan is warm.
    pub fn explain(&self) -> Result<String> {
        let prepared = self.prepared_plan()?;
        let pipeline = prepared
            .pipeline(self.version.idb(), self.version.views(), &self.options)
            .map_err(|e| Error::execution(&self.query.to_string(), e))?;
        Ok(pipeline.describe())
    }

    /// Execute the constructed plan against the pinned data version (under
    /// the engine's default options).  One-shot ad-hoc serving; register the
    /// query with [`Engine::prepare`](crate::Engine::prepare) for repeated
    /// serving by name.
    pub fn execute(&self) -> Result<ExecOutput> {
        self.execute_with(&self.options.clone())
    }

    /// [`execute`](Analysis::execute) under explicit options.  Guardrail
    /// limits on the options are enforced, with trips recorded in the
    /// engine's [`guard_stats`](crate::Engine::guard_stats).
    pub fn execute_with(&self, options: &ExecOptions) -> Result<ExecOutput> {
        self.execute_with_token(options, CancellationToken::new())
    }

    /// [`execute_with`](Analysis::execute_with) honouring a caller-held
    /// [`CancellationToken`]: trip it from any thread and the execution
    /// returns [`bqr_plan::ExecError::Cancelled`] at its next checkpoint.
    pub fn execute_with_token(
        &self,
        options: &ExecOptions,
        token: CancellationToken,
    ) -> Result<ExecOutput> {
        let prepared = self.prepared_plan()?;
        let guard =
            Guard::with_token(&options.limits, token).with_metrics(Arc::clone(&self.guard_metrics));
        prepared
            .execute_guarded(self.version.idb(), self.version.views(), options, &guard)
            .map_err(|e| Error::execution(&self.query.to_string(), e))
    }

    /// The bounded plan as a prepared handle on the engine's cache.
    fn prepared_plan(&self) -> Result<PreparedPlan> {
        Ok(PreparedPlan::with_cache(
            self.bounded_plan()?.clone(),
            Arc::clone(&self.cache),
        ))
    }
}
