//! Unit tests for the facade: lifecycle, sessions, statements, errors.
//!
//! The fixtures are the canonical movie setting of Example 1.1, taken from
//! `bqr_workload::movies` so they cannot drift from what the integration
//! tests pin.

use crate::{Engine, Error, IntoQuery};
use bqr_data::{tuple, AccessConstraint, AccessSchema, Database, DatabaseSchema};
use bqr_plan::ExecOptions;
use bqr_query::parser::parse_cq;
use bqr_workload::movies;

fn movie_engine() -> Engine {
    Engine::builder()
        .setting(movies::setting(100, 40))
        .cache_capacity(16)
        .build()
        .unwrap()
}

fn movie_instance() -> Database {
    let mut db = Database::empty(movies::schema());
    db.insert("person", tuple![1, "Ann", "NASA"]).unwrap();
    db.insert("person", tuple![2, "Bob", "NASA"]).unwrap();
    db.insert("person", tuple![3, "Cat", "ESA"]).unwrap();
    db.insert("movie", tuple![10, "Lucy", "Universal", "2014"])
        .unwrap();
    db.insert("movie", tuple![11, "Ouija", "Universal", "2014"])
        .unwrap();
    db.insert("movie", tuple![12, "Her", "WB", "2013"]).unwrap();
    db.insert("rating", tuple![10, 5]).unwrap();
    db.insert("rating", tuple![11, 3]).unwrap();
    db.insert("rating", tuple![12, 5]).unwrap();
    db.insert("like", tuple![1, 10, "movie"]).unwrap();
    db.insert("like", tuple![2, 12, "movie"]).unwrap();
    db.insert("like", tuple![3, 11, "movie"]).unwrap();
    db
}

const Q_XI: &str = "Q(mid) :- movie(mid, ym, 'Universal', '2014'), V1(mid), rating(mid, 5)";
const Q0: &str = "Q(mid) :- person(xp, xn, 'NASA'), movie(mid, ym, 'Universal', '2014'), \
                  like(xp, mid, 'movie'), rating(mid, 5)";

#[test]
fn analyze_accepts_strings_asts_and_unions() {
    let engine = movie_engine();
    let from_str = engine.analyze(Q_XI).unwrap();
    assert!(from_str.bounded(), "{:?}", from_str.reason());
    assert!(from_str.plan_size().unwrap() <= 40);
    assert!(from_str.fetch_bound().unwrap() <= 200);

    let cq = parse_cq(Q_XI).unwrap();
    let from_cq = engine.analyze(cq.clone()).unwrap();
    assert_eq!(from_cq.plan_size(), from_str.plan_size());
    // A reference is as good as an owned AST.
    assert!(engine.analyze(&cq).unwrap().bounded());
    // An FO query takes the FO path of the checker.
    let fo = bqr_query::FoQuery::from_cq(&cq);
    assert!(engine.analyze(fo).unwrap().bounded());
    // A two-rule string parses as a union.
    let union = "Q(m) :- movie(m, n, 'Universal', '2014'); Q(m) :- movie(m, n, 'WB', '2013')";
    let analysis = engine.analyze(union).unwrap();
    assert!(matches!(analysis.query(), bqr_core::Query::Ucq(_)));

    // Q0 itself is not topped (person/like cannot be fetched); that is a
    // *decision*, not an error.
    let q0 = engine.analyze(Q0).unwrap();
    assert!(!q0.bounded());
    assert!(q0.reason().is_some());
}

#[test]
fn parse_errors_carry_the_input() {
    let engine = movie_engine();
    let err = engine.analyze("Q(x :- oops").unwrap_err();
    match err {
        Error::Parse { input, .. } => assert!(input.contains("oops")),
        other => panic!("expected a parse error, got {other:?}"),
    }
}

#[test]
fn prepare_execute_and_cache_stats() {
    let engine = movie_engine();
    engine.attach(movie_instance()).unwrap();
    let statement = engine.prepare("fig1", Q_XI).unwrap();
    assert_eq!(statement.name(), "fig1");
    assert_eq!(engine.statement_names(), vec!["fig1".to_string()]);
    assert_eq!(
        statement.fingerprint(),
        engine.statement("fig1").unwrap().fingerprint()
    );

    let session = engine.session();
    let first = session.execute("fig1").unwrap();
    assert_eq!(first.tuples, vec![tuple![10]], "only Lucy qualifies");
    assert_eq!(first.stats.scanned_tuples, 0, "bounded plans never scan");
    let second = session.execute("fig1").unwrap();
    assert_eq!(second, first);
    let stats = engine.cache_stats();
    assert_eq!((stats.misses, stats.hits), (1, 1), "{stats:?}");
    assert_eq!(stats.lookups, stats.hits + stats.misses);

    // The facade answer equals the naive baseline, with strictly less data
    // accessed.
    let naive = engine.evaluate(Q0).unwrap();
    assert_eq!(naive.tuples, first.tuples);
    assert!(
        first.stats.base_tuples_accessed() < naive.stats.base_tuples_accessed(),
        "{} vs {}",
        first.stats.base_tuples_accessed(),
        naive.stats.base_tuples_accessed()
    );

    // Explain goes through the same cache, one operator per line.
    let plan = engine.analyze(Q_XI).unwrap();
    let explanation = plan.explain().unwrap();
    assert!(explanation.contains("fetch["), "{explanation}");

    // Ad-hoc execution without registering a name.
    assert_eq!(session.query(Q_XI).unwrap().tuples, vec![tuple![10]]);
    assert_eq!(plan.execute().unwrap().tuples, vec![tuple![10]]);

    assert!(engine.forget("fig1"));
    assert!(!engine.forget("fig1"));
    assert!(matches!(
        session.execute("fig1"),
        Err(Error::UnknownStatement(_))
    ));
}

#[test]
fn preparing_an_unbounded_query_is_a_typed_error() {
    let engine = movie_engine();
    let err = engine.prepare("q0", Q0).unwrap_err();
    match err {
        Error::NoRewriting { query, reason } => {
            assert!(query.contains("person"));
            assert!(reason.is_some());
        }
        other => panic!("expected NoRewriting, got {other:?}"),
    }
    assert!(engine.statement_names().is_empty());
}

#[test]
fn sessions_pin_the_data_version_across_mutations() {
    let engine = movie_engine();
    engine.attach(movie_instance()).unwrap();
    engine.prepare("fig1", Q_XI).unwrap();

    let pinned = engine.session();
    let before_epochs = pinned.epochs();
    let before = pinned.execute("fig1").unwrap();
    assert_eq!(before.tuples, vec![tuple![10]]);

    // A mutation lands: a new qualifying movie.
    engine
        .mutate(|db| {
            db.insert("movie", tuple![13, "Vice", "Universal", "2014"])?;
            db.insert("rating", tuple![13, 5])?;
            db.insert("like", tuple![1, 13, "movie"])
        })
        .unwrap();

    // The pinned session still reads the old version, bit-identically.
    assert_eq!(pinned.execute("fig1").unwrap(), before);
    assert_eq!(pinned.epochs(), before_epochs, "the pin is observable");

    // A fresh session sees the new version (fresh epochs, fresh answer).
    let fresh = engine.session();
    assert_ne!(fresh.epochs(), before_epochs);
    assert_eq!(
        fresh.execute("fig1").unwrap().tuples,
        vec![tuple![10], tuple![13]]
    );
    // And the pinned session *still* reads the old one.
    assert_eq!(pinned.execute("fig1").unwrap(), before);
}

#[test]
fn failed_mutations_are_never_published() {
    let engine = movie_engine();
    engine.attach(movie_instance()).unwrap();
    let before = engine.database();
    // The second insert fails (unknown relation): the first insert must not
    // become a live version — all-or-nothing.
    let err = engine
        .mutate(|db| {
            db.insert("rating", tuple![99, 1])?;
            db.insert("no_such_relation", tuple![0])
        })
        .unwrap_err();
    assert!(matches!(err, Error::Data(_)));
    assert_eq!(engine.database(), before, "no partial commit");
}

#[test]
fn panicking_mutations_are_contained_and_never_published() {
    let engine = movie_engine();
    engine.attach(movie_instance()).unwrap();
    engine.prepare("fig1", Q_XI).unwrap();
    let before = engine.database();
    let golden = engine.session().execute("fig1").unwrap();

    // A closure that panics mid-mutation must surface as a typed error —
    // not poison the writers lock, not publish the partial insert, and not
    // take the process down.
    let err = engine
        .mutate(|db| {
            db.insert("rating", tuple![99, 1])?;
            panic!("boom in user code");
            #[allow(unreachable_code)]
            Ok(())
        })
        .unwrap_err();
    match err {
        Error::MutationPanicked { message } => assert!(message.contains("boom"), "{message}"),
        other => panic!("expected MutationPanicked, got {other:?}"),
    }
    assert_eq!(engine.database(), before, "no partial commit");

    // The engine stays fully serviceable: reads are bit-identical and the
    // *next* mutate goes through (the writers mutex recovered).
    assert_eq!(engine.session().execute("fig1").unwrap(), golden);
    engine
        .mutate(|db| db.insert("rating", tuple![99, 1]))
        .unwrap();
    assert_eq!(engine.database().size(), before.size() + 1);
    let stats = engine.guard_stats();
    assert_eq!(
        stats.panics_contained, 0,
        "mutate panics are not exec trips"
    );
}

#[test]
fn mutate_closures_may_read_the_engine() {
    // The rebuild runs outside the data lock, so a closure that calls the
    // engine's read methods must not deadlock.
    let engine = movie_engine();
    engine.attach(movie_instance()).unwrap();
    let sizes = engine
        .mutate(|db| {
            let concurrent_read = engine.database().size();
            db.insert("rating", tuple![99, 1])?;
            Ok((concurrent_read, db.size()))
        })
        .unwrap();
    assert_eq!(sizes.0 + 1, sizes.1);
}

#[test]
fn over_budget_plans_are_constructed_but_not_served() {
    // With M = 3 the Qξ plan still gets constructed (so callers can inspect
    // how far over budget it is) but no serving path will run it.
    let engine = Engine::builder()
        .setting(movies::setting(100, 3))
        .build()
        .unwrap();
    engine.attach(movie_instance()).unwrap();
    let analysis = engine.analyze(Q_XI).unwrap();
    assert!(!analysis.bounded());
    assert!(analysis.plan().is_some(), "inspectable");
    assert!(analysis.plan_size().unwrap() > 3);
    for err in [
        analysis.bounded_plan().map(|_| ()).unwrap_err(),
        analysis.execute().map(|_| ()).unwrap_err(),
        analysis.explain().map(|_| ()).unwrap_err(),
        engine.prepare("x", Q_XI).map(|_| ()).unwrap_err(),
        engine.session().query(Q_XI).map(|_| ()).unwrap_err(),
    ] {
        assert!(matches!(err, Error::NoRewriting { .. }), "{err:?}");
    }
}

#[test]
fn prepare_from_reuses_an_analysis() {
    let engine = movie_engine();
    engine.attach(movie_instance()).unwrap();
    let analysis = engine.analyze(Q_XI).unwrap();
    let statement = engine.prepare_from("fig1", &analysis).unwrap();
    assert_eq!(statement.name(), "fig1");
    assert_eq!(
        engine.session().execute("fig1").unwrap().tuples,
        vec![tuple![10]]
    );
}

#[test]
fn attach_rejects_foreign_schemas() {
    let engine = movie_engine();
    let foreign = Database::empty(DatabaseSchema::with_relations(&[("other", &["a"])]).unwrap());
    assert!(matches!(
        engine.attach(foreign),
        Err(Error::SchemaMismatch(_))
    ));
}

#[test]
fn exec_options_thread_through() {
    let engine = Engine::builder()
        .setting(movies::setting(100, 40))
        .exec_options(ExecOptions::parallel(2))
        .build()
        .unwrap();
    engine.attach(movie_instance()).unwrap();
    engine.prepare("fig1", Q_XI).unwrap();
    let session = engine.session();
    let parallel = session.execute("fig1").unwrap();
    let serial = session
        .execute_with("fig1", &ExecOptions::serial())
        .unwrap();
    assert_eq!(parallel, serial, "options never change the output");
    let stmt = engine.statement("fig1").unwrap();
    assert_eq!(session.execute_statement(&stmt).unwrap(), parallel);
}

#[test]
fn decide_runs_the_exact_procedure() {
    let schema = DatabaseSchema::with_relations(&[("rating", &["mid", "rank"])]).unwrap();
    let engine = Engine::builder()
        .schema(schema)
        .access(AccessSchema::new(vec![AccessConstraint::new(
            "rating",
            &["mid"],
            &["rank"],
            1,
        )
        .unwrap()]))
        .bound(3)
        .build()
        .unwrap();
    let outcome = engine
        .decide("Q(r) :- rating(42, r)", bqr_plan::PlanLanguage::Cq)
        .unwrap();
    assert!(outcome.has_rewriting());
    // The witness serves through the typed prepare path (no more silent
    // None), wired to *this* engine's cache so the compilation shows up in
    // its counters.
    let prepared = outcome
        .prepare_with(std::sync::Arc::clone(engine.cache()))
        .unwrap()
        .expect("a rewriting exists");
    let mut db = Database::empty(engine.setting().schema.clone());
    db.insert("rating", tuple![42, 5]).unwrap();
    engine.attach(db).unwrap();
    let session = engine.session();
    let out = session
        .execute_statement(&crate::PreparedStatement::new(
            "rank_of_42",
            bqr_core::Query::Cq(parse_cq("Q(r) :- rating(42, r)").unwrap()),
            prepared,
        ))
        .unwrap();
    assert_eq!(out.tuples, vec![tuple![5]]);
    assert_eq!(engine.cache_stats().misses, 1, "compiled on this cache");
}

#[test]
fn into_query_simplifies_single_disjunct_unions() {
    let q = "Q(r) :- rating(42, r)".into_query().unwrap();
    assert!(matches!(q, bqr_core::Query::Cq(_)));
    let owned = String::from("Q(r) :- rating(42, r)");
    assert!(matches!(
        (&owned).into_query().unwrap(),
        bqr_core::Query::Cq(_)
    ));
    assert!(matches!(
        owned.into_query().unwrap(),
        bqr_core::Query::Cq(_)
    ));
}

#[test]
fn noop_mutations_publish_nothing() {
    let engine = movie_engine();
    engine.attach(movie_instance()).unwrap();
    engine.prepare("fig1", Q_XI).unwrap();

    // Warm the pipeline so any spurious invalidation would be observable.
    let warm = engine.session();
    let golden = warm.execute("fig1").unwrap();
    assert_eq!(warm.execute("fig1").unwrap(), golden);
    let stats0 = engine.cache_stats();
    let epochs0 = engine.session().epochs();

    // Read-only closure.
    let size = engine.mutate(|db| Ok(db.size())).unwrap();
    assert_eq!(size, movie_instance().size());
    // Re-inserting a present tuple.
    engine
        .mutate(|db| db.insert("rating", tuple![10, 5]).map(drop))
        .unwrap();
    // Removing an absent tuple.
    engine
        .mutate(|db| db.remove("rating", &tuple![777, 1]).map(drop))
        .unwrap();
    // A do-undo pair.
    engine
        .mutate(|db| {
            db.insert("rating", tuple![777, 1])?;
            db.remove("rating", &tuple![777, 1]).map(drop)
        })
        .unwrap();

    // Nothing was published: same epochs, and the warm pipeline is still
    // warm — zero invalidations, zero recompiles.
    assert_eq!(engine.session().epochs(), epochs0);
    assert_eq!(engine.session().execute("fig1").unwrap(), golden);
    let stats1 = engine.cache_stats();
    assert_eq!(
        stats1.invalidations, stats0.invalidations,
        "no-op mutations must invalidate nothing: {stats1:?}"
    );
    assert_eq!(
        stats1.misses, stats0.misses,
        "no-op mutations must not force recompiles: {stats1:?}"
    );
}

#[test]
fn error_closures_on_large_instances_copy_no_relation() {
    let engine = movie_engine();
    engine
        .attach(movies::generate(movies::MovieScale {
            persons: 4_000,
            movies: 1_000,
            n0: 100,
            seed: 9,
        }))
        .unwrap();
    // `database()` clones the live instance; with copy-on-write storage the
    // clone shares every relation's tuple set with the served version.
    let snapshot = engine.database();

    let err = engine
        .mutate(|db| -> bqr_data::Result<()> {
            // Reads don't fork storage...
            assert!(db.size() > 0);
            for rel in snapshot.relations() {
                let live = db.relation(rel.name()).unwrap();
                assert!(
                    live.shares_storage(rel),
                    "`{}` was copied before any write",
                    rel.name()
                );
            }
            // ...and neither do no-op writes.
            let present = snapshot
                .relation("rating")
                .unwrap()
                .iter()
                .next()
                .unwrap()
                .clone();
            assert!(!db.insert("rating", present)?);
            for rel in snapshot.relations() {
                assert!(db.relation(rel.name()).unwrap().shares_storage(rel));
            }
            Err(bqr_data::DataError::UnknownRelation("injected".into()))
        })
        .unwrap_err();
    assert!(matches!(err, Error::Data(_)));

    // A genuine write forks exactly the touched relation.
    engine
        .mutate(|db| {
            db.insert("rating", tuple![5_000_000, 5])?;
            for rel in snapshot.relations() {
                assert_eq!(
                    db.relation(rel.name()).unwrap().shares_storage(rel),
                    rel.name() != "rating",
                    "only `rating` may be forked, `{}` was",
                    rel.name()
                );
            }
            Ok(())
        })
        .unwrap();
}

#[test]
fn writes_invalidate_only_pipelines_reading_the_touched_relations() {
    let engine = movie_engine();
    engine.attach(movie_instance()).unwrap();
    // `fig1` reads movie, rating and V1; `no_rating` only movie and V1.
    engine.prepare("fig1", Q_XI).unwrap();
    engine
        .prepare(
            "no_rating",
            "Q(mid) :- movie(mid, ym, 'Universal', '2014'), V1(mid)",
        )
        .unwrap();
    let warm = engine.session();
    warm.execute("fig1").unwrap();
    warm.execute("no_rating").unwrap();
    let misses0 = engine.cache_stats().misses;

    // Insert a rating for a movie nobody likes: `rating` gets a fresh epoch
    // but V1's extent (person ⋈ movie ⋈ like) is untouched.
    engine
        .mutate(|db| db.insert("rating", tuple![11, 4]).map(drop))
        .unwrap();

    let fresh = engine.session();
    fresh.execute("no_rating").unwrap();
    assert_eq!(
        engine.cache_stats().misses,
        misses0,
        "a write to `rating` must not evict a pipeline that never reads it"
    );
    fresh.execute("fig1").unwrap();
    assert_eq!(
        engine.cache_stats().misses,
        misses0 + 1,
        "the pipeline reading `rating` must recompile exactly once"
    );
}

#[test]
fn delta_and_rebuild_modes_publish_identical_versions() {
    let delta = movie_engine();
    let rebuild = Engine::builder()
        .setting(movies::setting(100, 40))
        .cache_capacity(16)
        .maintenance(crate::MaintenanceMode::Rebuild)
        .build()
        .unwrap();
    for engine in [&delta, &rebuild] {
        engine.attach(movie_instance()).unwrap();
        engine.prepare("fig1", Q_XI).unwrap();
    }
    let mutation = |db: &mut Database| {
        db.insert("movie", tuple![13, "Vice", "Universal", "2014"])?;
        db.insert("rating", tuple![13, 5])?;
        db.insert("like", tuple![2, 13, "movie"])?;
        db.remove("rating", &tuple![10, 5]).map(drop)
    };
    delta.mutate(mutation).unwrap();
    rebuild.mutate(mutation).unwrap();
    assert_eq!(delta.database(), rebuild.database());
    let a = delta.session();
    let b = rebuild.session();
    for name in a.views().names() {
        assert_eq!(a.views().extent(name), b.views().extent(name));
    }
    assert_eq!(
        a.execute("fig1").unwrap(),
        b.execute("fig1").unwrap(),
        "served tuples and FetchStats must be bit-identical across modes"
    );
}

#[test]
fn mutate_batch_matches_serial_mutates_bit_for_bit() {
    let batched = movie_engine();
    let serial = movie_engine();
    for engine in [&batched, &serial] {
        engine.attach(movie_instance()).unwrap();
        engine.prepare("fig1", Q_XI).unwrap();
    }
    let ops: Vec<fn(&mut Database) -> bqr_data::Result<bool>> = vec![
        |db| {
            db.insert("movie", tuple![13, "Vice", "Universal", "2014"])?;
            db.insert("rating", tuple![13, 5])?;
            db.insert("like", tuple![1, 13, "movie"])
        },
        |db| db.remove("rating", &tuple![11, 3]),
        |db| db.insert("rating", tuple![11, 4]),
    ];

    let epochs_before = batched.session().epochs();
    let outcomes = batched.mutate_batch(ops.clone()).unwrap();
    assert!(outcomes.iter().all(|o| matches!(o, Ok(true))));
    for op in ops {
        serial.mutate(op).unwrap();
    }

    // One publish for the whole batch …
    let epochs_after = batched.session().epochs();
    assert_ne!(epochs_before, epochs_after);
    // … and the result is bit-identical to three separate publishes:
    // relations, view extents, served tuples AND FetchStats.
    assert_eq!(batched.database(), serial.database());
    let a = batched.session();
    let b = serial.session();
    for name in a.views().names() {
        assert_eq!(a.views().extent(name), b.views().extent(name));
    }
    assert_eq!(a.execute("fig1").unwrap(), b.execute("fig1").unwrap());
}

#[test]
fn mutate_batch_isolates_failing_closures() {
    let engine = movie_engine();
    engine.attach(movie_instance()).unwrap();
    let before = engine.database();

    let outcomes = engine
        .mutate_batch(vec![
            Box::new(|db: &mut Database| db.insert("rating", tuple![20, 5]))
                as Box<dyn FnOnce(&mut Database) -> bqr_data::Result<bool>>,
            // Errors after a write: the write must be rolled back without
            // disturbing the neighbours.
            Box::new(|db: &mut Database| {
                db.insert("rating", tuple![21, 1])?;
                db.insert("no_such_relation", tuple![0])
            }),
            // Panics mid-write: contained, rolled back, typed.
            Box::new(|db: &mut Database| {
                db.insert("rating", tuple![22, 1])?;
                panic!("boom in batched closure");
                #[allow(unreachable_code)]
                Ok(false)
            }),
            Box::new(|db: &mut Database| db.insert("rating", tuple![23, 2])),
        ])
        .unwrap();

    assert!(matches!(outcomes[0], Ok(true)));
    assert!(matches!(outcomes[1], Err(Error::Data(_))));
    match &outcomes[2] {
        Err(Error::MutationPanicked { message }) => assert!(message.contains("boom")),
        other => panic!("expected MutationPanicked, got {other:?}"),
    }
    assert!(matches!(outcomes[3], Ok(true)));

    // Exactly the two successful closures' effects are live; none of the
    // rolled-back writes leaked.
    let db = engine.database();
    assert_eq!(db.size(), before.size() + 2);
    let rating = db.relation("rating").unwrap();
    assert!(rating.contains(&tuple![20, 5]));
    assert!(rating.contains(&tuple![23, 2]));
    assert!(!rating.contains(&tuple![21, 1]));
    assert!(!rating.contains(&tuple![22, 1]));
}

#[test]
fn empty_or_noop_batches_publish_nothing() {
    let engine = movie_engine();
    engine.attach(movie_instance()).unwrap();
    let epochs = engine.session().epochs();

    let none: Vec<fn(&mut Database) -> bqr_data::Result<()>> = Vec::new();
    assert!(engine.mutate_batch(none).unwrap().is_empty());
    // A do-undo batch nets out to the empty delta: no-op elision applies to
    // the batch exactly as it does to a single mutate.
    let outcomes = engine
        .mutate_batch(vec![
            |db: &mut Database| db.insert("rating", tuple![30, 1]).map(drop),
            |db: &mut Database| db.remove("rating", &tuple![30, 1]).map(drop),
        ])
        .unwrap();
    assert_eq!(outcomes.len(), 2);
    assert!(outcomes.iter().all(Result::is_ok));
    assert_eq!(engine.session().epochs(), epochs, "nothing published");
}
