//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! API subset the workspace's benches use (`benchmark_group`, `sample_size`,
//! `bench_with_input`, `bench_function`, `Bencher::iter`, the
//! `criterion_group!` / `criterion_main!` macros) with a plain
//! median-of-samples timer instead of criterion's statistical machinery.
//! Results are printed as `group/id  time: [median]  (mean, n samples)`.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one("", &id.to_string(), 20, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion-compatible knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.0, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.to_string(), self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one(group: &str, id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        times: Vec::with_capacity(samples),
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match bencher.summary() {
        Some((median, mean)) => eprintln!(
            "{label:<40} time: [{}]  (mean {}, {} samples)",
            fmt_duration(median),
            fmt_duration(mean),
            samples
        ),
        None => eprintln!("{label:<40} (no measurement)"),
    }
}

/// Per-benchmark timing helper handed to the closure.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std_black_box(routine());
        self.times.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(routine());
            self.times.push(start.elapsed());
        }
    }

    fn summary(&self) -> Option<(Duration, Duration)> {
        if self.times.is_empty() {
            return None;
        }
        let mut sorted = self.times.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        Some((median, mean))
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Benchmark identifier: `BenchmarkId::new("naive", n)` or
/// `BenchmarkId::from_parameter(n)`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_summarises() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("count", 1), &3u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).sum::<u64>()
            })
        });
        group.finish();
        // one warm-up + 5 samples
        assert_eq!(runs, 6);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 7).0, "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
