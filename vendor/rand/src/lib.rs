//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! vendors the (small) API subset the workspace actually uses:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer ranges, and
//! `Rng::gen_bool`.  The generator is SplitMix64 — statistically fine for
//! synthetic workload generation, deterministic per seed, and dependency
//! free.  It does NOT reproduce the value streams of the real `rand` crate;
//! nothing in this workspace depends on specific streams, only on
//! per-seed determinism.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: produce the next 64 random bits.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (`a..b` or `a..=b`, integer types).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1]"
        );
        // 53 random bits -> uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled from, producing values of type `T`.
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, n)` by widening multiply (unbiased enough for
/// workload generation; avoids modulo's worst-case skew).
fn uniform_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty inclusive range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, i64, i32);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64-backed stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0..1000u64)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0..1000u64)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0..1000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(0..1usize);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads} heads out of 10k");
    }
}
