//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the slice of proptest the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, integer-range and tuple strategies,
//! `prop::collection::vec`, the `proptest!` macro with
//! `#![proptest_config(...)]`, and the `prop_assume!` / `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Differences from the real crate: generation is plain random sampling from
//! a fixed-seed SplitMix64 stream (deterministic across runs), and failing
//! cases are reported without shrinking.

use std::ops::Range;

/// Deterministic RNG driving every generated case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed seed so test failures reproduce across runs.
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x9a3f_71c5_02b4_e01d,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample from an empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// How a single generated case ended.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not meet a `prop_assume!` precondition; it is discarded.
    Reject(String),
    /// A `prop_assert!` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Per-test configuration; only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, i64, i32);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace of the real crate.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                left, right, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic();
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(20);
            while accepted < config.cases && attempts < max_attempts {
                attempts += 1;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property `{}` failed after {} cases: {}",
                               stringify!($name), accepted, msg);
                    }
                }
            }
            // Mirror real proptest's "too many global rejects" abort: a
            // property whose assumptions rejected every generated case was
            // never checked and must not report success.
            if accepted == 0 {
                panic!(
                    "property `{}`: all {} generated cases were rejected by prop_assume!",
                    stringify!($name),
                    attempts
                );
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..1000 {
            let x = (0i64..4).generate(&mut rng);
            assert!((0..4).contains(&x));
            let (a, b) = (0i64..4, 0i64..3).generate(&mut rng);
            assert!((0..4).contains(&a) && (0..3).contains(&b));
            let v = prop::collection::vec((0i64..4, 0i64..3), 0..12).generate(&mut rng);
            assert!(v.len() < 12);
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::deterministic();
        let doubled = (1usize..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let x = doubled.generate(&mut rng);
            assert!(x % 2 == 0 && (2..20).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 0usize..100, v in prop::collection::vec(0i64..5, 0..4)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100, "x = {}", x);
            prop_assert_eq!(v.len(), v.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        #[should_panic(expected = "rejected by prop_assume")]
        fn rejecting_every_case_is_an_error(x in 0usize..100) {
            prop_assume!(x > 100, "impossible assumption");
            prop_assert!(x > 100);
        }
    }
}
