//! Umbrella crate for the reproduction of *Bounded Query Rewriting Using
//! Views* (Cao, Fan, Geerts, Lu; PODS'16).
//!
//! The implementation lives in the workspace crates; this package re-exports
//! them for convenience and anchors the workspace-level integration tests and
//! examples:
//!
//! * [`bqr_data`] — values, tuples, relations, access schemas, indices;
//! * [`bqr_query`] — CQ/UCQ/FO ASTs, homomorphisms, containment, chase;
//! * [`bqr_plan`] — bounded query plans and their executor;
//! * [`bqr_core`] — the topped-query checker and exact decision procedures;
//! * [`bqr_workload`] — synthetic workloads (movies, social, CDR, random);
//! * [`bqr_bench`] — the experiment harness.

pub use bqr_bench as bench;
pub use bqr_core as core;
pub use bqr_data as data;
pub use bqr_plan as plan;
pub use bqr_query as query;
pub use bqr_workload as workload;
