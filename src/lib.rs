//! Umbrella crate for the reproduction of *Bounded Query Rewriting Using
//! Views* (Cao, Fan, Geerts, Lu; PODS'16).
//!
//! The front door is the [`Engine`] facade: one object that owns the
//! rewriting setting `(R, V, A, M)`, the data, and the full request
//! lifecycle — analyse a query's boundedness, register its rewriting as a
//! named prepared statement, and serve it over epoch-pinned sessions while
//! the instance mutates underneath.  Everything returns the single
//! [`Error`] type.
//!
//! # Analyse, prepare, serve
//!
//! ```
//! use bqr::{tuple, Engine};
//! use bqr::data::{AccessConstraint, AccessSchema, Database, DatabaseSchema};
//!
//! # fn main() -> bqr::Result<()> {
//! // The setting: schema R, access schema A (rating has a key on mid),
//! // no views, plan-size bound M = 8.
//! let schema = DatabaseSchema::with_relations(&[("rating", &["mid", "rank"])])
//!     .map_err(bqr::Error::Data)?;
//! let engine = Engine::builder()
//!     .schema(schema.clone())
//!     .access(AccessSchema::new(vec![
//!         AccessConstraint::new("rating", &["mid"], &["rank"], 1).unwrap(),
//!     ]))
//!     .bound(8)
//!     .build()?;
//!
//! // Attach data.
//! let mut db = Database::empty(schema);
//! db.insert("rating", tuple![42, 5]).map_err(bqr::Error::Data)?;
//! db.insert("rating", tuple![7, 3]).map_err(bqr::Error::Data)?;
//! engine.attach(db)?;
//!
//! // Analyse: the point lookup is boundedly rewritable (one fetch).
//! let analysis = engine.analyze("Q(r) :- rating(42, r)")?;
//! assert!(analysis.bounded());
//! assert!(analysis.explain()?.contains("fetch["));
//!
//! // Prepare + serve.  `explain` already compiled the pipeline into the
//! // engine's cache, so both executions are warm cache hits.
//! engine.prepare("rank_of_42", "Q(r) :- rating(42, r)")?;
//! let session = engine.session();
//! assert_eq!(session.execute("rank_of_42")?.tuples, vec![tuple![5]]);
//! assert_eq!(session.execute("rank_of_42")?.tuples, vec![tuple![5]]);
//! let stats = engine.cache_stats();
//! assert_eq!((stats.misses, stats.hits), (1, 2));
//! # Ok(())
//! # }
//! ```
//!
//! # Epoch-pinned sessions
//!
//! A [`Session`] pins the data version current at [`Engine::session`]; its
//! reads are snapshot-consistent no matter what mutations land concurrently:
//!
//! ```
//! use bqr::{tuple, Engine};
//! use bqr::data::{AccessConstraint, AccessSchema, Database, DatabaseSchema};
//!
//! # fn main() -> bqr::Result<()> {
//! # let schema = DatabaseSchema::with_relations(&[("rating", &["mid", "rank"])])
//! #     .map_err(bqr::Error::Data)?;
//! # let engine = Engine::builder()
//! #     .schema(schema.clone())
//! #     .access(AccessSchema::new(vec![
//! #         AccessConstraint::new("rating", &["mid"], &["rank"], 2).unwrap(),
//! #     ]))
//! #     .bound(8)
//! #     .build()?;
//! # let mut db = Database::empty(schema);
//! # db.insert("rating", tuple![42, 5]).map_err(bqr::Error::Data)?;
//! # engine.attach(db)?;
//! engine.prepare("ranks", "Q(r) :- rating(42, r)")?;
//! let pinned = engine.session();
//! assert_eq!(pinned.execute("ranks")?.tuples, vec![tuple![5]]);
//!
//! // A write bumps the relation's epoch and publishes a new version...
//! engine.mutate(|db| db.insert("rating", tuple![42, 4]))?;
//!
//! // ...the pinned session still reads its snapshot; a fresh one sees the
//! // write (served through a recompile — never a stale cache entry).
//! assert_eq!(pinned.execute("ranks")?.tuples, vec![tuple![5]]);
//! assert_eq!(
//!     engine.session().execute("ranks")?.tuples,
//!     vec![tuple![4], tuple![5]],
//! );
//! # Ok(())
//! # }
//! ```
//!
//! # Mutation
//!
//! [`Engine::mutate`] runs a closure against a copy-on-write clone of the
//! current instance and publishes the result as a new version — but its
//! cost is proportional to the *delta*, not the database.  The relation
//! mutators record the net write set (inserts and removes cancel; a
//! do-undo closure leaves no trace), and version construction dispatches on
//! what the delta looks like, per relation and per view:
//!
//! * **Exact delta** (the normal case — the closure only called `insert` /
//!   `remove`): CQ view extents are maintained semi-naively (insertions
//!   re-derive only tuples with a delta-atom binding; deletions over-delete
//!   candidates and re-derive survivors), UCQ views are maintained **per
//!   disjunct** — an untouched disjunct keeps its extent without any
//!   evaluation, and the union extent is patched from the disjunct changes,
//!   with a cross-disjunct check so a tuple one disjunct lost survives
//!   while another still derives it — and each touched relation's interned
//!   snapshot is **patched in place** from its predecessor
//!   ([`data::patched_snapshot_of`]): surviving rows keep their slots,
//!   insertions are appended, and the per-position distinct counts are
//!   adjusted incrementally, all in `O(|Δ|)`.
//! * **Access indexes patch under exact deltas** — inserts *and* removals:
//!   `O(#groups)` `Arc` clones plus the forked groups the delta lands in,
//!   instead of a rebuild.  Each group entry carries a per-projection
//!   *source multiplicity*, so a removed tuple decrements its entry and the
//!   entry only disappears when no source tuple supports it any more.
//! * **Wholesale replacement** (the closure *assigned* a relation, losing
//!   tracking): the delta degrades to "unknown" for that relation —
//!   affected views re-materialise (reusing the previous extent object when
//!   the contents come out unchanged), its index and snapshot rebuild.
//!   Replacing a relation with equal contents is detected cheaply (shared
//!   storage or equal-length compare) and short-circuits to a no-op.
//! * **Non-CQ FO views** always re-materialise — only CQ/UCQ definitions
//!   have a sound semi-naive path.
//!
//! Untouched relations share their epochs, indexes, and snapshots into the
//! new version, so the `(plan, options, epochs)`-keyed pipeline cache
//! invalidates only pipelines that actually read a changed input.  A net
//! no-op mutation publishes nothing at all: no epoch moves, no cache entry
//! is touched.  [`MaintenanceMode::Rebuild`] restores the from-scratch
//! behaviour engine-wide (the differential baseline: same contents, same
//! epoch contract, bit-identical answers).  Failures anywhere — closure
//! error, closure panic, or a fault inside maintenance — are
//! all-or-nothing: the serving version never moves.
//!
//! ```
//! use bqr::{tuple, Engine};
//! use bqr::data::{AccessConstraint, AccessSchema, Database, DatabaseSchema};
//!
//! # fn main() -> bqr::Result<()> {
//! # let schema = DatabaseSchema::with_relations(&[("rating", &["mid", "rank"])])
//! #     .map_err(bqr::Error::Data)?;
//! # let engine = Engine::builder()
//! #     .schema(schema.clone())
//! #     .access(AccessSchema::new(vec![
//! #         AccessConstraint::new("rating", &["mid"], &["rank"], 2).unwrap(),
//! #     ]))
//! #     .bound(8)
//! #     .build()?;
//! # let mut db = Database::empty(schema);
//! # db.insert("rating", tuple![42, 5]).map_err(bqr::Error::Data)?;
//! # engine.attach(db)?;
//! let before = engine.session().epochs();
//! // Re-inserting a present tuple and a do-undo pair are net no-ops:
//! // nothing is published, no epoch moves.
//! engine.mutate(|db| {
//!     db.insert("rating", tuple![42, 5])?; // already present
//!     db.insert("rating", tuple![42, 4])?; // inserted...
//!     db.remove("rating", &tuple![42, 4])?; // ...and undone
//!     Ok(())
//! })?;
//! assert_eq!(engine.session().epochs(), before);
//! # Ok(())
//! # }
//! ```
//!
//! # Runtime guardrails
//!
//! Every execution runs under a [`Guard`](plan::Guard): set a wall-clock
//! deadline, an intermediate-row budget, or a runtime fetch cap on
//! [`ExecOptions`](plan::ExecOptions) (or engine-wide via
//! [`EngineBuilder::guard_limits`]), and hand out a
//! [`CancellationToken`](plan::CancellationToken) to cancel from another
//! thread.  Trips surface as typed [`ExecError`](plan::ExecError)s inside
//! [`Error::Execution`] — reachable via [`Error::exec_error`](engine::Error::exec_error) —
//! and are counted per engine in [`Engine::guard_stats`].  A panicking
//! shard worker aborts its query, not the process; a panicking mutate
//! closure returns [`Error::MutationPanicked`](engine::Error::MutationPanicked)
//! and publishes nothing.  On success the [`FetchStats`](data::FetchStats)
//! accounting is unchanged — guards only ever turn answers into errors,
//! never alter answers.
//!
//! ```
//! use bqr::{tuple, Engine};
//! use bqr::data::{AccessConstraint, AccessSchema, Database, DatabaseSchema};
//! use bqr::plan::{ExecError, ExecOptions};
//!
//! # fn main() -> bqr::Result<()> {
//! # let schema = DatabaseSchema::with_relations(&[("rating", &["mid", "rank"])])
//! #     .map_err(bqr::Error::Data)?;
//! # let engine = Engine::builder()
//! #     .schema(schema.clone())
//! #     .access(AccessSchema::new(vec![
//! #         AccessConstraint::new("rating", &["mid"], &["rank"], 1).unwrap(),
//! #     ]))
//! #     .bound(8)
//! #     .build()?;
//! # let mut db = Database::empty(schema);
//! # db.insert("rating", tuple![42, 5]).map_err(bqr::Error::Data)?;
//! # engine.attach(db)?;
//! engine.prepare("ranks", "Q(r) :- rating(42, r)")?;
//! let session = engine.session();
//! // A zero-row budget trips before any intermediate result materialises.
//! let strangled = ExecOptions::serial().with_row_budget(0);
//! let err = session.execute_with("ranks", &strangled).unwrap_err();
//! assert!(matches!(
//!     err.exec_error(),
//!     Some(ExecError::MemoryBudgetExceeded { budget_rows: 0 })
//! ));
//! // The same engine keeps serving under sane limits.
//! let sane = ExecOptions::serial().with_deadline_ms(10_000);
//! assert_eq!(session.execute_with("ranks", &sane)?.tuples, vec![tuple![5]]);
//! assert_eq!(engine.guard_stats().memory_trips, 1);
//! # Ok(())
//! # }
//! ```
//!
//! # Execution
//!
//! Prepared statements compile to a flat operator pipeline over interned
//! ids, and the pipeline's hot operators — selection, view filtering,
//! projection, hash-join build/probe, fetch probing, dedup — run as
//! **vectorised batch kernels**: 1024-row batches, with a filter first
//! voting every condition into a *selection vector* (row indices) and only
//! then copying the survivors out in one pass.  Guard checks and row-budget
//! charges happen once per batch, so the guardrails above cost the same as
//! they did row-at-a-time.
//!
//! With [`ExecOptions::parallel`](plan::ExecOptions::parallel) (or
//! [`parallel_auto`](plan::ExecOptions::parallel_auto), which sizes the
//! worker pool per operator from its input cardinalities — also an
//! [`EngineBuilder::parallel_auto`] engine default), data-parallel
//! operators are **morsel-driven**: worker threads pull fixed-size morsels
//! of the input from a shared queue, so a slow morsel never idles the
//! other workers behind a barrier.  Results always merge *in morsel
//! order*; since morsel boundaries depend only on the row count and worker
//! count and every kernel preserves input order, a parallel run is
//! **bit-identical** — answer tuples *and*
//! [`FetchStats`](data::FetchStats) — to the serial one:
//!
//! ```
//! use bqr::{tuple, Engine};
//! use bqr::data::{AccessConstraint, AccessSchema, Database, DatabaseSchema};
//! use bqr::plan::ExecOptions;
//!
//! # fn main() -> bqr::Result<()> {
//! # let schema = DatabaseSchema::with_relations(&[("rating", &["mid", "rank"])])
//! #     .map_err(bqr::Error::Data)?;
//! # let engine = Engine::builder()
//! #     .schema(schema.clone())
//! #     .access(AccessSchema::new(vec![
//! #         AccessConstraint::new("rating", &["mid"], &["rank"], 64).unwrap(),
//! #     ]))
//! #     .bound(8)
//! #     .build()?;
//! # let mut db = Database::empty(schema);
//! # for i in 0..50i64 {
//! #     db.insert("rating", tuple![42, i]).map_err(bqr::Error::Data)?;
//! # }
//! # engine.attach(db)?;
//! engine.prepare("ranks", "Q(r) :- rating(42, r)")?;
//! let session = engine.session();
//! let serial = session.execute_with("ranks", &ExecOptions::serial())?;
//! for options in [ExecOptions::parallel(4), ExecOptions::parallel_auto()] {
//!     let parallel = session.execute_with("ranks", &options)?;
//!     // Bit-identical: same tuples, same |D_ξ| accounting.
//!     assert_eq!(parallel, serial);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! # Serving
//!
//! [`server::Server`] wraps one engine in an async, batched serving front:
//! admission control priced by each statement's fetch bound `|D_ξ|`
//! (over-budget submissions fail fast with a typed
//! [`server::ServerError::Overloaded`], never a wrong answer), read
//! coalescing (same-statement requests inside a batch window share one
//! vectorised execution and each receive its exact tuples and
//! [`FetchStats`](data::FetchStats)), and write batching through
//! [`Engine::mutate_batch`] (one delta-tracked publish per burst, with
//! per-closure isolation).  [`server::Server::execute`] blocks;
//! [`server::Server::submit`] returns a [`server::Pending`] that is a plain
//! `Future`, driven by the crate's own worker-pool executor:
//!
//! ```
//! use bqr::{tuple, Engine};
//! use bqr::data::{AccessConstraint, AccessSchema, Database, DatabaseSchema};
//! use bqr::server::{Server, ServerConfig};
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let schema = DatabaseSchema::with_relations(&[("rating", &["mid", "rank"])])
//! #     .map_err(bqr::Error::Data)?;
//! # let engine = Engine::builder()
//! #     .schema(schema.clone())
//! #     .access(AccessSchema::new(vec![
//! #         AccessConstraint::new("rating", &["mid"], &["rank"], 2).unwrap(),
//! #     ]))
//! #     .bound(8)
//! #     .build()?;
//! # let mut db = Database::empty(schema);
//! # db.insert("rating", tuple![42, 5]).map_err(bqr::Error::Data)?;
//! # engine.attach(db)?;
//! let server = Server::with_config(
//!     engine,
//!     ServerConfig {
//!         batch_window: Duration::from_micros(50),
//!         workers: 2,
//!         ..ServerConfig::default()
//!     },
//! );
//! // Analyse + register: the returned cost class is the statement's fetch
//! // bound, the currency of admission control.
//! let cost = server.prepare("ranks", "Q(r) :- rating(42, r)")?;
//! assert!(cost >= 1);
//!
//! // Concurrent clients; coalesced requests share one execution, and every
//! // answer is bit-identical to an unbatched session execution.
//! let golden = server.engine().session().execute("ranks")?;
//! std::thread::scope(|scope| {
//!     for _ in 0..4 {
//!         scope.spawn(|| assert_eq!(server.execute("ranks").unwrap().output, golden));
//!     }
//! });
//!
//! // The async entry hands back a `Future`; `wait()` is the sync adapter.
//! let pending = server.submit("ranks");
//! assert_eq!(pending.wait()?.output, golden);
//!
//! server.drain();
//! let stats = server.stats();
//! assert_eq!((stats.admitted, stats.completed, stats.rejected), (5, 5, 0));
//! assert!(stats.p50_us <= stats.p99_us);
//! # Ok(())
//! # }
//! ```
//!
//! # The layers underneath
//!
//! The facade is a thin, allocation-conscious composition of the workspace
//! crates, all re-exported here for direct use (the `effective_syntax`
//! example walks the low-level API):
//!
//! * [`bqr_data`] (as [`data`]) — values, tuples, relations, access schemas,
//!   epoch-stamped instances, interned snapshots, indices;
//! * [`bqr_query`] (as [`query`]) — CQ/UCQ/FO ASTs, homomorphisms,
//!   containment, `A`-equivalence, the chase, the cost-based join planner;
//! * [`bqr_plan`] (as [`plan`]) — bounded query plans, the compiled operator
//!   [`Pipeline`](plan::Pipeline), conformance, plan fingerprints and the
//!   `(plan, options, epochs)`-keyed [`PipelineCache`](plan::PipelineCache),
//!   plus the runtime [`Guard`](plan::Guard) machinery;
//! * [`bqr_core`] (as [`core`]) — the topped-query checker (effective
//!   syntax) and the exact decision procedures for `VBRP`;
//! * [`bqr_engine`] (as [`engine`]) — the [`Engine`] facade itself;
//! * [`bqr_server`] (as [`server`]) — the async serving front (admission
//!   control, read coalescing, write batching);
//! * [`bqr_workload`] (as [`workload`]) — synthetic workloads (movies,
//!   social, CDR, random);
//! * [`bqr_bench`] (as [`bench`]) — the experiment harness.

pub use bqr_bench as bench;
pub use bqr_core as core;
pub use bqr_data as data;
pub use bqr_engine as engine;
pub use bqr_plan as plan;
pub use bqr_query as query;
pub use bqr_server as server;
pub use bqr_workload as workload;

pub use bqr_data::tuple;
pub use bqr_engine::{
    Analysis, Engine, EngineBuilder, Error, EvalOutput, IntoQuery, MaintenanceMode,
    PreparedStatement, Result, Session,
};
