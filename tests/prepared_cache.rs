//! Differential and concurrency tests for the prepared-execution subsystem
//! (`bqr-plan::prepared`).
//!
//! The contract under test: an execution through a [`PreparedPlan`] /
//! [`PipelineCache`] — hit path, miss path, after any interleaving of
//! relation mutations, from any number of threads — is **bit-identical**
//! (answer tuples *and* `FetchStats`) to compiling a fresh [`Pipeline`] at
//! that moment, which `tests/exec_diff.rs` in turn holds identical to the
//! reference interpreter.  Cached results may be *faster*, never *different*
//! — and in particular never stale: a mutated relation presents a fresh
//! epoch, so the stale pipeline cannot be looked up at all.

use bqr_data::{
    tuple, AccessConstraint, AccessSchema, Database, DatabaseSchema, IndexedDatabase, Value,
};
use bqr_plan::builder::Plan;
use bqr_plan::exec::{reference, ExecOptions, Pipeline};
use bqr_plan::{PipelineCache, PreparedPlan, QueryPlan};
use bqr_query::parser::parse_cq;
use bqr_query::{MaterializedViews, ViewSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

const MAX_ARITY: usize = 6;

fn schema() -> DatabaseSchema {
    DatabaseSchema::with_relations(&[("r", &["a", "b"]), ("s", &["b", "c"]), ("t", &["c"])])
        .unwrap()
}

fn constraints() -> Vec<AccessConstraint> {
    vec![
        AccessConstraint::new("r", &["a"], &["b"], 64).unwrap(),
        AccessConstraint::new("s", &["b"], &["c"], 64).unwrap(),
        AccessConstraint::new("t", &[], &["c"], 64).unwrap(),
    ]
}

fn view_set() -> ViewSet {
    let mut views = ViewSet::empty();
    views
        .add_cq("Vr", parse_cq("Vr(x, y) :- r(x, y)").unwrap())
        .unwrap();
    views
        .add_cq("W", parse_cq("W(x) :- s(x, y)").unwrap())
        .unwrap();
    views
}

/// The mutable world the differential test executes against: one database
/// plus the derived runtime objects, rebuilt (with fresh epochs) on every
/// mutation.
struct World {
    db: Database,
    idb: IndexedDatabase,
    views: MaterializedViews,
}

impl World {
    fn build(db: Database) -> World {
        let views = view_set().materialize(&db).unwrap();
        let idb = IndexedDatabase::build(db.clone(), AccessSchema::new(constraints())).unwrap();
        World { db, idb, views }
    }

    fn random(rng: &mut StdRng) -> World {
        let mut db = Database::empty(schema());
        for _ in 0..rng.gen_range(10..40usize) {
            db.insert(
                "r",
                tuple![rng.gen_range(0..12i64), rng.gen_range(0..12i64)],
            )
            .unwrap();
        }
        for _ in 0..rng.gen_range(10..40usize) {
            db.insert(
                "s",
                tuple![rng.gen_range(0..12i64), rng.gen_range(0..12i64)],
            )
            .unwrap();
        }
        for _ in 0..rng.gen_range(1..8usize) {
            db.insert("t", tuple![rng.gen_range(0..12i64)]).unwrap();
        }
        World::build(db)
    }

    /// Mutate every base relation (guaranteeing fresh epochs for all of
    /// them) and rebuild indexes and view extents.
    fn mutate(self, rng: &mut StdRng) -> World {
        let mut db = self.db;
        db.insert(
            "r",
            tuple![rng.gen_range(0..12i64), rng.gen_range(0..12i64)],
        )
        .unwrap();
        db.insert(
            "s",
            tuple![rng.gen_range(0..12i64), rng.gen_range(0..12i64)],
        )
        .unwrap();
        db.insert("t", tuple![rng.gen_range(0..12i64)]).unwrap();
        World::build(db)
    }
}

fn rand_value(rng: &mut StdRng) -> Value {
    Value::int(rng.gen_range(0..12i64))
}

fn leaf(rng: &mut StdRng) -> Plan {
    match rng.gen_range(0..5u32) {
        0 => Plan::constant(vec![rand_value(rng)]),
        1 => Plan::constant(vec![rand_value(rng), rand_value(rng)]),
        2 => Plan::constant(Vec::<Value>::new()),
        3 => Plan::view("Vr", 2),
        _ => Plan::view("W", 1),
    }
}

fn align(rng: &mut StdRng, left: Plan, right: Plan) -> (Plan, Plan) {
    let arity = left.arity().min(right.arity());
    let shrink = |rng: &mut StdRng, p: Plan| {
        if p.arity() == arity {
            return p;
        }
        let mut cols: Vec<usize> = (0..p.arity()).collect();
        while cols.len() > arity {
            let drop = rng.gen_range(0..cols.len());
            cols.remove(drop);
        }
        p.project(cols)
    };
    (shrink(rng, left), shrink(rng, right))
}

fn random_conditions(rng: &mut StdRng, arity: usize) -> Vec<bqr_plan::SelectCondition> {
    use bqr_plan::SelectCondition;
    let mut conds = Vec::new();
    for _ in 0..rng.gen_range(1..3usize) {
        let c = rng.gen_range(0..arity);
        conds.push(match rng.gen_range(0..4u32) {
            0 => SelectCondition::ColEqConst(c, rand_value(rng)),
            1 => SelectCondition::ColNeConst(c, rand_value(rng)),
            2 => SelectCondition::ColEqCol(c, rng.gen_range(0..arity)),
            _ => SelectCondition::ColNeCol(c, rng.gen_range(0..arity)),
        });
    }
    conds
}

fn gen_plan(rng: &mut StdRng, depth: usize) -> Plan {
    if depth == 0 {
        return leaf(rng);
    }
    match rng.gen_range(0..12u32) {
        0 | 1 => leaf(rng),
        2 | 3 => {
            let child = gen_plan(rng, depth - 1);
            if child.arity() == 0 {
                return child;
            }
            let n = rng.gen_range(0..=child.arity().min(3));
            let cols: Vec<usize> = (0..n).map(|_| rng.gen_range(0..child.arity())).collect();
            child.project(cols)
        }
        4 => {
            let child = gen_plan(rng, depth - 1);
            if child.arity() == 0 {
                return child;
            }
            let conds = random_conditions(rng, child.arity());
            child.select(conds)
        }
        5 => gen_plan(rng, depth - 1).rename(),
        6 | 7 => {
            let constraint = constraints()[rng.gen_range(0..3usize)].clone();
            let key_len = constraint.x().len();
            let mut child = gen_plan(rng, depth - 1);
            while child.arity() < key_len {
                child = child.product(Plan::constant(vec![rand_value(rng)]));
            }
            let mut cols: Vec<usize> = (0..child.arity()).collect();
            while cols.len() > key_len {
                let drop = rng.gen_range(0..cols.len());
                cols.remove(drop);
            }
            child.fetch(constraint, cols)
        }
        8 => {
            let left = gen_plan(rng, depth - 1);
            let right = gen_plan(rng, depth - 1);
            if left.arity() + right.arity() > MAX_ARITY {
                return left;
            }
            left.product(right)
        }
        9 => {
            let left = gen_plan(rng, depth - 1);
            let right = gen_plan(rng, depth - 1);
            if left.arity() == 0 || right.arity() == 0 || left.arity() + right.arity() > MAX_ARITY {
                return left;
            }
            let pairs = vec![(
                rng.gen_range(0..left.arity()),
                rng.gen_range(0..right.arity()),
            )];
            left.join_eq(right, &pairs)
        }
        10 => {
            let (left, right) = {
                let l = gen_plan(rng, depth - 1);
                let r = gen_plan(rng, depth - 1);
                align(rng, l, r)
            };
            left.union(right)
        }
        _ => {
            let (left, right) = {
                let l = gen_plan(rng, depth - 1);
                let r = gen_plan(rng, depth - 1);
                align(rng, l, r)
            };
            left.difference(right)
        }
    }
}

/// Execute `prepared` against the world through the cache — serial and
/// sharded, twice each so both the miss and the hit path run — and hold
/// every output bit-identical to a *fresh* compile-and-execute and to the
/// reference interpreter at this exact moment.
fn check(prepared: &PreparedPlan, world: &World) {
    let fresh = Pipeline::compile(prepared.plan(), &world.idb, &world.views)
        .expect("generated plans compile")
        .execute(&world.idb, &ExecOptions::serial())
        .expect("generated plans execute");
    let oracle = reference::execute(prepared.plan(), &world.idb, &world.views).unwrap();
    assert_eq!(fresh.tuples, oracle.tuples, "on\n{}", prepared.plan());
    assert_eq!(fresh.stats, oracle.stats, "on\n{}", prepared.plan());
    for options in [ExecOptions::serial(), ExecOptions::parallel(2)] {
        for round in 0..2 {
            let got = prepared
                .execute_with(&world.idb, &world.views, &options)
                .expect("prepared execution succeeds");
            assert_eq!(
                got.tuples,
                fresh.tuples,
                "cached tuples diverge (round {round}, {options:?}) on\n{}",
                prepared.plan()
            );
            assert_eq!(
                got.stats,
                fresh.stats,
                "cached FetchStats diverge (round {round}, {options:?}) on\n{}",
                prepared.plan()
            );
        }
    }
}

/// ≥ 200 randomized plans through one shared cache, interleaved with
/// relation mutations that bump epochs; every cached execution (hit or
/// miss, serial or sharded) is bit-identical to a fresh compile.
#[test]
fn prepared_executions_match_fresh_compiles_under_mutation() {
    let mut rng = StdRng::seed_from_u64(0x00CA_C4E5_EED0);
    let cache = Arc::new(PipelineCache::new(512));
    let mut world = World::random(&mut rng);
    let mut pool: Vec<PreparedPlan> = Vec::new();
    let mut executed = 0usize;
    let mut attempts = 0usize;
    let mut with_fetch = 0usize;
    while executed < 220 {
        attempts += 1;
        assert!(attempts < 5_000, "generator degenerated");
        // Interleave mutations: every relation epoch bumps, view extents are
        // re-materialised, and previously cached pipelines become stale keys.
        if rng.gen_bool(0.3) {
            world = world.mutate(&mut rng);
        }
        let Ok(plan) = gen_plan(&mut rng, 3).build() else {
            continue;
        };
        if !plan.fetches().is_empty() {
            with_fetch += 1;
        }
        let prepared = PreparedPlan::with_cache(plan, Arc::clone(&cache));
        check(&prepared, &world);
        pool.push(prepared);
        // Revisit earlier prepared plans against the *current* world: their
        // cache entries may be warm (no mutation since) or stale (epochs
        // moved on) — either way the output must match a fresh compile.
        for _ in 0..2 {
            let i = rng.gen_range(0..pool.len());
            check(&pool[i], &world);
        }
        executed += 1;
    }
    assert!(with_fetch >= 30, "only {with_fetch} plans fetched");
    let stats = cache.stats();
    assert!(stats.hits > 0, "{stats:?}");
    assert!(stats.misses > 0, "{stats:?}");
    assert!(
        stats.invalidations > 0,
        "mutations must have swept stale entries: {stats:?}"
    );
    assert_eq!(stats.lookups, stats.hits + stats.misses, "{stats:?}");
}

/// Deterministic invalidation scenario: a mutation to a relation the plan
/// reads forces a recompile (observable via the counters), and the recompiled
/// execution sees the new data.
#[test]
fn mutation_invalidates_exactly_the_stale_entry() {
    let mut rng = StdRng::seed_from_u64(7);
    let cache = Arc::new(PipelineCache::new(16));
    let world = World::random(&mut rng);
    let scan = PreparedPlan::with_cache(Plan::view("Vr", 2).build().unwrap(), Arc::clone(&cache));
    let other = PreparedPlan::with_cache(
        Plan::constant(vec![Value::int(3)])
            .fetch(constraints()[0].clone(), vec![0])
            .build()
            .unwrap(),
        Arc::clone(&cache),
    );
    check(&scan, &world);
    check(&other, &world);
    let before = cache.stats();
    assert_eq!(before.invalidations, 0);

    let world = world.mutate(&mut rng);
    check(&scan, &world);
    check(&other, &world);
    let after = cache.stats();
    assert!(
        after.invalidations >= 2,
        "both plans' stale entries swept: {after:?}"
    );
    assert_eq!(after.lookups, after.hits + after.misses);
}

/// One consistent version of the world, shared across threads: the runtime
/// objects plus the per-plan expected outputs computed by the reference
/// interpreter *for this version*.
struct Version {
    idb: IndexedDatabase,
    views: MaterializedViews,
    expected: Vec<bqr_plan::ExecOutput>,
}

fn stress_plans() -> Vec<QueryPlan> {
    let phi_r = constraints()[0].clone();
    let phi_t = constraints()[2].clone();
    vec![
        Plan::view("Vr", 2).build().unwrap(),
        Plan::view("Vr", 2).select_eq_const(0, 0).build().unwrap(),
        Plan::constant(vec![Value::int(0)])
            .fetch(phi_r, vec![0])
            .join_eq(Plan::view("W", 1), &[(1, 0)])
            .project(vec![1])
            .build()
            .unwrap(),
        Plan::constant(Vec::<Value>::new())
            .fetch(phi_t, vec![])
            .build()
            .unwrap(),
        Plan::view("W", 1)
            .union(Plan::view("Vr", 2).project(vec![1]))
            .build()
            .unwrap(),
        Plan::view("Vr", 2)
            .project(vec![0])
            .difference(Plan::view("W", 1))
            .build()
            .unwrap(),
    ]
}

fn stress_version(step: i64, plans: &[QueryPlan]) -> Version {
    let mut db = Database::empty(schema());
    for i in 0..8i64 {
        db.insert("r", tuple![i % 4, i]).unwrap();
        db.insert("s", tuple![i, 20 + i]).unwrap();
    }
    db.insert("t", tuple![21]).unwrap();
    // The step-dependent tuples make every version's answers distinct, so a
    // stale cached pipeline would be *observable*, not silently identical.
    for v in 0..=step {
        db.insert("r", tuple![0, 100 + v]).unwrap();
        db.insert("s", tuple![100 + v, 200 + v]).unwrap();
        db.insert("t", tuple![20 + (v % 8)]).unwrap();
    }
    let views = view_set().materialize(&db).unwrap();
    let idb = IndexedDatabase::build(db, AccessSchema::new(constraints())).unwrap();
    let expected = plans
        .iter()
        .map(|p| reference::execute(p, &idb, &views).unwrap())
        .collect();
    Version {
        idb,
        views,
        expected,
    }
}

/// Scoped threads hammer one `PipelineCache` with concurrent prepare /
/// execute / mutate.  Every observed output must equal the reference answer
/// *of the version it executed against* — no stale-epoch result ever
/// escapes — and the counters reconcile exactly.
#[test]
fn concurrent_prepare_execute_mutate_is_never_stale() {
    const WORKERS: u64 = 4;
    const VERSIONS: i64 = 24;
    const MIN_ITERS_PER_WORKER: usize = 150;

    let plans = stress_plans();
    let cache = Arc::new(PipelineCache::new(32));
    let prepared: Vec<PreparedPlan> = plans
        .iter()
        .map(|p| PreparedPlan::with_cache(p.clone(), Arc::clone(&cache)))
        .collect();
    let current: RwLock<Arc<Version>> = RwLock::new(Arc::new(stress_version(0, &plans)));
    let mutations_done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let current = &current;
        let mutations_done = &mutations_done;
        let prepared = &prepared;
        let plans = &plans;
        // The mutator: publishes a fresh version (fresh epochs, different
        // answers) every few iterations of the workers.
        scope.spawn(move || {
            for step in 1..=VERSIONS {
                let next = Arc::new(stress_version(step, plans));
                *current.write().unwrap() = next;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            mutations_done.store(true, Ordering::SeqCst);
        });
        for w in 0..WORKERS {
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xD00D + w);
                let mut iters = 0usize;
                loop {
                    let done = mutations_done.load(Ordering::SeqCst);
                    // Snapshot one consistent version; the cache may
                    // meanwhile hold entries for any number of other
                    // versions.
                    let version = Arc::clone(&current.read().unwrap());
                    let i = rng.gen_range(0..prepared.len());
                    let options = if rng.gen_bool(0.3) {
                        ExecOptions::parallel(2)
                    } else {
                        ExecOptions::serial()
                    };
                    let got = prepared[i]
                        .execute_with(&version.idb, &version.views, &options)
                        .expect("stress plans execute");
                    assert_eq!(
                        got.tuples, version.expected[i].tuples,
                        "stale tuples escaped (worker {w}, plan {i})"
                    );
                    assert_eq!(
                        got.stats, version.expected[i].stats,
                        "stale stats escaped (worker {w}, plan {i})"
                    );
                    iters += 1;
                    if done && iters >= MIN_ITERS_PER_WORKER {
                        break;
                    }
                }
            });
        }
    });

    let stats = cache.stats();
    assert_eq!(
        stats.lookups,
        stats.hits + stats.misses,
        "counters must reconcile: {stats:?}"
    );
    assert!(stats.hits > 0, "warm executions happened: {stats:?}");
    assert!(
        stats.misses >= plans.len() as u64,
        "every plan compiled at least once: {stats:?}"
    );
    assert!(
        cache.len() <= cache.capacity(),
        "capacity bound held under contention"
    );
}
