//! Differential tests: the planned slot engine (cost-based atom orders and
//! generic join) versus the retained `hom::reference` oracle, on randomized
//! query/instance pairs.
//!
//! Three procedures are exercised, each on well over 200 randomized cases:
//! CQ evaluation, classical containment, and `A`-containment.  The query
//! pools mix the cyclic shapes that trigger generic join (triangles,
//! k-cycles, self-joins with constants) with acyclic join trees, so both
//! execution paths of the engine are covered, under every planner strategy.

use bqr_bench::hom_bench::reference_cq_contained_in;
use bqr_data::{AccessConstraint, AccessSchema, Database, DatabaseSchema, Relation, Tuple};
use bqr_query::containment::ContainmentChecker;
use bqr_query::element::element_queries;
use bqr_query::eval::Evaluator;
use bqr_query::hom::{reference, Assignment, MatchLimit};
use bqr_query::{Budget, ConjunctiveQuery, JoinStrategy, PlannerConfig, Term};
use bqr_workload::random::{
    generate_cyclic_queries, generate_database, generate_queries, CyclicQueryConfig,
    RandomDatabaseConfig, RandomQueryConfig,
};
use std::collections::{BTreeMap, BTreeSet};

fn schema() -> DatabaseSchema {
    DatabaseSchema::with_relations(&[
        ("e", &["s", "d"]),
        ("r", &["a", "b", "c"]),
        ("s", &["u", "v"]),
    ])
    .unwrap()
}

fn access() -> AccessSchema {
    AccessSchema::new(vec![
        AccessConstraint::new("e", &["s"], &["d"], 3).unwrap(),
        AccessConstraint::new("r", &["a", "b"], &["c"], 2).unwrap(),
        AccessConstraint::new("s", &["u"], &["v"], 1).unwrap(),
    ])
}

/// A pool mixing cyclic and acyclic queries, all of arity 1.
fn query_pool(seed: u64, cyclic: usize, acyclic: usize) -> Vec<ConjunctiveQuery> {
    let schema = schema();
    let mut pool = Vec::new();
    for cycle_len in [3usize, 4] {
        pool.extend(generate_cyclic_queries(
            &schema,
            &CyclicQueryConfig {
                cycle_len,
                extra_atoms: 1,
                constant_probability: 0.25,
                constants: (0..6).map(bqr_data::Value::int).collect(),
                head_variables: 1,
                seed: seed + cycle_len as u64,
            },
            cyclic / 2,
        ));
    }
    pool.extend(generate_queries(
        &schema,
        &RandomQueryConfig {
            atoms: 3,
            constant_probability: 0.3,
            constants: (0..6).map(bqr_data::Value::int).collect(),
            head_variables: 1,
            seed: seed + 100,
        },
        acyclic,
    ));
    pool.retain(|q| q.arity() == 1);
    pool
}

fn instances(count: usize) -> Vec<Database> {
    (0..count as u64)
        .map(|seed| {
            generate_database(
                &schema(),
                &RandomDatabaseConfig {
                    tuples_per_relation: 25,
                    domain_size: 6,
                    seed: 1000 + seed,
                },
            )
        })
        .collect()
}

/// Evaluate a CQ with the reference engine: enumerate homomorphisms naively
/// and project the head.
fn reference_eval(cq: &ConjunctiveQuery, db: &Database) -> BTreeSet<Tuple> {
    let relations: BTreeMap<String, &Relation> = cq
        .relation_names()
        .into_iter()
        .map(|n| {
            let rel = db.relation(&n).expect("pool queries use base relations");
            (n, rel)
        })
        .collect();
    let matches = reference::enumerate_homomorphisms(
        cq.atoms(),
        &relations,
        &Assignment::new(),
        MatchLimit::AtMost(1_000_000),
    )
    .unwrap();
    matches
        .into_iter()
        .map(|m| {
            cq.head()
                .iter()
                .map(|t| match t {
                    Term::Const(c) => c.clone(),
                    Term::Var(v) => m[v].clone(),
                })
                .collect::<Tuple>()
        })
        .collect()
}

const STRATEGIES: [JoinStrategy; 4] = [
    JoinStrategy::Auto,
    JoinStrategy::Heuristic,
    JoinStrategy::CostBased,
    JoinStrategy::GenericJoin,
];

#[test]
fn evaluation_agrees_with_reference_on_randomized_cases() {
    let pool = query_pool(1, 20, 15);
    let dbs = instances(4);
    let mut cases = 0usize;
    for strategy in STRATEGIES {
        let evaluator = Evaluator::new().with_planner(PlannerConfig::with_strategy(strategy));
        for db in &dbs {
            for q in &pool {
                let planned: BTreeSet<Tuple> = evaluator
                    .eval_cq(q, db, None)
                    .unwrap()
                    .into_iter()
                    .collect();
                let naive = reference_eval(q, db);
                assert_eq!(planned, naive, "eval mismatch ({strategy:?}) on {q}");
                cases += 1;
            }
        }
    }
    assert!(cases >= 200, "only {cases} evaluation cases ran");
}

#[test]
fn containment_agrees_with_reference_on_randomized_pairs() {
    let schema = schema();
    let pool = query_pool(2, 10, 6);
    let mut cases = 0usize;
    for strategy in [JoinStrategy::Auto, JoinStrategy::GenericJoin] {
        let checker =
            ContainmentChecker::with_planner(&schema, PlannerConfig::with_strategy(strategy));
        for q1 in &pool {
            for q2 in &pool {
                let planned = checker.cq_contained_in(q1, q2).unwrap();
                let oracle = reference_cq_contained_in(q1, q2, &schema);
                assert_eq!(
                    planned, oracle,
                    "containment mismatch ({strategy:?}) on {q1} ⊆ {q2}"
                );
                cases += 1;
            }
        }
    }
    assert!(cases >= 200, "only {cases} containment cases ran");
}

#[test]
fn a_containment_agrees_with_reference_on_randomized_pairs() {
    let schema = schema();
    let access = access();
    let budget = Budget::generous();
    let pool: Vec<_> = query_pool(3, 10, 8).into_iter().take(15).collect();
    assert!(pool.len() >= 15, "pool too small: {}", pool.len());
    let mut cases = 0usize;
    let checker =
        ContainmentChecker::with_planner(&schema, PlannerConfig::with_strategy(JoinStrategy::Auto));
    for q1 in &pool {
        // Element queries of q1, shared across all q2.
        let elements = element_queries(q1, &access, &schema, &budget).unwrap();
        for q2 in &pool {
            let planned = bqr_query::aequiv::ucq_a_contained_in_with(
                &checker,
                &bqr_query::UnionQuery::single(q1.clone()),
                &bqr_query::UnionQuery::single(q2.clone()),
                &access,
                &budget,
            )
            .unwrap();
            let oracle = elements
                .iter()
                .all(|qe| reference_cq_contained_in(qe, q2, &schema));
            assert_eq!(planned, oracle, "A-containment mismatch on {q1} ⊑_A {q2}");
            cases += 1;
        }
    }
    assert!(cases >= 200, "only {cases} A-containment cases ran");
}
