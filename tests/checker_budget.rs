//! Pins the checker budget of the decision procedures: `decide`, `topped`,
//! `enumerate` and the bounded-output analyses construct **at most one
//! `ContainmentChecker` per top-level call**, sharing its memoised canonical
//! instances and compiled searches across all phases (candidate filtering,
//! maximality, final equivalence) instead of rebuilding them per phase.
//!
//! The counter is process-global, so these assertions live in their own
//! integration-test binary: cargo runs test binaries one at a time, and this
//! file contains a single test, so nothing else constructs checkers while
//! the deltas are measured.

use bqr_core::bounded_eval::boundedly_evaluable_cq;
use bqr_core::decide::{decide_acq_by_maximum_plan, decide_vbrp};
use bqr_core::enumerate::{enumerate_plans, EnumerationOptions};
use bqr_core::problem::{RewritingSetting, VbrpInstance};
use bqr_core::topped::ToppedChecker;
use bqr_plan::PlanLanguage;
use bqr_query::containment::ContainmentChecker;
use bqr_query::parser::parse_cq;
use bqr_query::{Budget, ViewSet};

fn setting(m: usize) -> RewritingSetting {
    let schema = bqr_data::DatabaseSchema::with_relations(&[("rating", &["mid", "rank"])]).unwrap();
    let access = bqr_data::AccessSchema::new(vec![bqr_data::AccessConstraint::new(
        "rating",
        &["mid"],
        &["rank"],
        1,
    )
    .unwrap()]);
    let mut views = ViewSet::empty();
    views
        .add_cq("V", parse_cq("V(m) :- rating(m, 5)").unwrap())
        .unwrap();
    RewritingSetting::new(schema, access, views, m)
}

fn constructed_by(f: impl FnOnce()) -> u64 {
    let before = ContainmentChecker::constructed_count();
    f();
    ContainmentChecker::constructed_count() - before
}

#[test]
fn decision_procedures_construct_at_most_one_checker_per_call() {
    let q = parse_cq("Q(r) :- rating(42, r)").unwrap();

    // The exact search runs one A-equivalence test per candidate plan —
    // hundreds of containment checks — through exactly one checker.
    let n = constructed_by(|| {
        let outcome =
            decide_vbrp(&VbrpInstance::new(setting(3), q.clone()), PlanLanguage::Cq).unwrap();
        assert!(outcome.has_rewriting());
    });
    assert_eq!(n, 1, "decide_vbrp must share one checker across its phases");

    // AlgACQ has three checker-hungry phases (soundness filtering,
    // maximality, the final Q ⊑_A ξ test); still one checker.
    let n = constructed_by(|| {
        let outcome =
            decide_acq_by_maximum_plan(&VbrpInstance::new(setting(3), q.clone()), PlanLanguage::Cq)
                .unwrap();
        assert!(outcome.has_rewriting());
    });
    assert_eq!(n, 1, "AlgACQ must share one checker across its phases");

    // The effective syntax (topped / bounded evaluability) is chase- and
    // syntax-based: zero checkers.
    let s = setting(10);
    let n = constructed_by(|| {
        let checker = ToppedChecker::new(&s);
        let analysis = checker.analyze_cq(&q).unwrap();
        assert!(analysis.topped, "{:?}", analysis.reason);
    });
    assert_eq!(n, 0, "the topped checker is purely syntactic");
    let n = constructed_by(|| {
        let _ = boundedly_evaluable_cq(&s, &q).unwrap();
    });
    assert_eq!(n, 0, "bounded evaluability is purely syntactic");

    // Plan enumeration produces candidates only; the containment work
    // happens in the caller's shared checker.
    let small = setting(3);
    let n = constructed_by(|| {
        let options = EnumerationOptions {
            constants: q.constants().into_iter().collect(),
            language: PlanLanguage::Cq,
            max_arity: 3,
        };
        let plans = enumerate_plans(&small, &options, &Budget::generous()).unwrap();
        assert!(!plans.is_empty());
    });
    assert_eq!(n, 0, "enumeration never constructs checkers");

    // Sanity: the counter itself moves when checkers are constructed.
    let schema = s.schema.clone();
    let n = constructed_by(|| {
        let _ = ContainmentChecker::new(&schema);
        let _ = ContainmentChecker::new(&schema);
    });
    assert_eq!(n, 2);
}
