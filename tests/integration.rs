//! Cross-crate integration tests: generators → effective syntax → plan
//! execution → comparison against the reference evaluator.

use bqr_core::size_bounded::BoundedOutputOracle;
use bqr_core::topped::ToppedChecker;
use bqr_data::{FetchStats, IndexedDatabase};
use bqr_query::eval::{eval_cq, eval_cq_counting};
use bqr_workload::{cdr, movies, social};

/// End-to-end on the movie workload: the rewriting over V1 is topped, its
/// plan answers Q0 exactly, and the data it touches does not grow with |D|.
#[test]
fn movie_workload_end_to_end() {
    let n0 = 50;
    let setting = movies::setting(n0, 40);
    let checker = ToppedChecker::new(&setting);
    let analysis = checker.analyze_cq(&movies::q_xi()).unwrap();
    assert!(analysis.topped, "{:?}", analysis.reason);
    let plan = analysis.plan.unwrap();

    let mut accesses = Vec::new();
    for persons in [200usize, 2_000] {
        let db = movies::generate(movies::MovieScale {
            persons,
            movies: 400,
            n0,
            seed: 3,
        });
        assert!(setting.access.satisfied_by(&db).unwrap());
        let cache = setting.views.materialize(&db).unwrap();
        let idb = IndexedDatabase::build(db.clone(), setting.access.clone()).unwrap();
        let bounded = bqr_plan::execute(&plan, &idb, &cache).unwrap();
        let naive = eval_cq(&movies::q0(), &db, None).unwrap();
        assert_eq!(bounded.tuples, naive, "persons = {persons}");
        assert!(bounded.stats.base_tuples_accessed() <= 2 * n0 + n0);
        accesses.push(bounded.stats.base_tuples_accessed());
    }
    // Scale independence: a 10x bigger person/like table keeps the base-data
    // access under the same constant bound (the exact count may vary with the
    // data, the bound may not).
    let declared = analysis.fetch_bound.unwrap();
    assert!(
        accesses.iter().all(|&a| a <= declared),
        "{accesses:?} vs bound {declared}"
    );
}

/// The CDR workload: at least 90% of the templates have bounded rewritings,
/// every generated plan is exact, and the access reduction is substantial.
#[test]
fn cdr_workload_fraction_and_exactness() {
    let scale = cdr::CdrScale {
        customers: 800,
        days: 7,
        ..cdr::CdrScale::default()
    };
    let setting = cdr::setting(&scale, 120);
    let mut oracle = BoundedOutputOracle::new(
        setting.schema.clone(),
        setting.access.clone(),
        setting.budget,
    );
    for (name, bound) in cdr::view_bounds() {
        oracle.annotate_view(name, bound);
    }
    let checker = ToppedChecker::with_oracle(&setting, oracle);
    let db = cdr::generate(scale);
    let cache = setting.views.materialize(&db).unwrap();
    let idb = IndexedDatabase::build(db.clone(), setting.access.clone()).unwrap();

    let queries = cdr::workload(11, 2);
    let mut rewritable = 0usize;
    for q in &queries {
        let analysis = checker.analyze_cq(&q.query).unwrap();
        let mut naive_stats = FetchStats::new();
        let naive = eval_cq_counting(&q.query, &db, Some(&cache), &mut naive_stats).unwrap();
        if analysis.topped {
            rewritable += 1;
            let out = bqr_plan::execute(&analysis.plan.unwrap(), &idb, &cache).unwrap();
            assert_eq!(out.tuples, naive, "{}", q.name);
            assert!(
                out.stats.base_tuples_accessed() < naive_stats.base_tuples_accessed(),
                "{}: bounded access {} must beat naive {}",
                q.name,
                out.stats.base_tuples_accessed(),
                naive_stats.base_tuples_accessed()
            );
        }
    }
    assert!(
        rewritable * 10 >= queries.len() * 9,
        "at least 90% of the workload is rewritable, got {rewritable}/{}",
        queries.len()
    );
}

/// The social graph-search query is boundedly evaluable (no views) and its
/// plan is exact on generated instances.
#[test]
fn social_graph_search_end_to_end() {
    let setting = social::setting(30, 200);
    let checker = ToppedChecker::new(&setting);
    let query = social::graph_search_query(5, 7);
    let analysis = checker.analyze_cq(&query).unwrap();
    assert!(analysis.topped, "{:?}", analysis.reason);
    let plan = analysis.plan.unwrap();

    let db = social::generate(social::SocialScale {
        persons: 1_000,
        restaurants: 100,
        max_friends: 30,
        days: 14,
        seed: 23,
    });
    assert!(setting.access.satisfied_by(&db).unwrap());
    let cache = setting.views.materialize(&db).unwrap();
    let idb = IndexedDatabase::build(db.clone(), setting.access.clone()).unwrap();
    let bounded = bqr_plan::execute(&plan, &idb, &cache).unwrap();
    let naive = eval_cq(&query, &db, None).unwrap();
    assert_eq!(bounded.tuples, naive);
    assert!(bounded.stats.base_tuples_accessed() <= 3 * 30 * 2);
    assert_eq!(bounded.stats.scanned_tuples, 0);
}

/// Constraints mined from generated data are strong enough to make the
/// point-lookup templates of the CDR workload rewritable.
#[test]
fn discovered_constraints_support_rewriting() {
    let scale = cdr::CdrScale {
        customers: 300,
        days: 5,
        ..cdr::CdrScale::default()
    };
    let db = cdr::generate(scale);
    let mined = bqr_workload::discover_constraints(
        &db,
        &bqr_workload::discover::DiscoveryOptions {
            max_bound: 64,
            max_key_size: 2,
        },
    );
    assert!(mined.satisfied_by(&db).unwrap());
    let setting = bqr_core::problem::RewritingSetting::new(
        cdr::schema(),
        mined,
        bqr_query::ViewSet::empty(),
        120,
    );
    let checker = ToppedChecker::new(&setting);
    let q = &cdr::workload(3, 1)[0]; // callees_of_day: a point lookup
    let analysis = checker.analyze_cq(&q.query).unwrap();
    assert!(analysis.topped, "{:?}", analysis.reason);
}
