//! Tests that replay the paper's worked examples end to end.

use bqr_core::decide::decide_vbrp;
use bqr_core::problem::{RewritingSetting, VbrpInstance};
use bqr_core::topped::ToppedChecker;
use bqr_data::{AccessConstraint, AccessSchema, DatabaseSchema, IndexedDatabase};
use bqr_plan::builder::figure1_plan;
use bqr_plan::{check_conformance, Conformance, PlanLanguage};
use bqr_query::aequiv::cq_a_equivalent;
use bqr_query::bounded_output::{cq_output, OutputBound};
use bqr_query::parser::parse_cq;
use bqr_query::{Budget, ViewSet};
use bqr_workload::movies;

fn phi1(n0: usize) -> AccessConstraint {
    AccessConstraint::new("movie", &["studio", "release"], &["mid"], n0).unwrap()
}
fn phi2() -> AccessConstraint {
    AccessConstraint::new("rating", &["mid"], &["rank"], 1).unwrap()
}

/// Example 2.2: the Fig. 1 plan ξ0 is 11-bounded for Q0 using V1 under A0 and
/// fetches at most 2·N0 tuples.
#[test]
fn example_2_2_figure1_plan_is_11_bounded() {
    let n0 = 100;
    let plan = figure1_plan(&phi1(n0), &phi2()).unwrap();
    assert_eq!(plan.size(), 11);
    assert_eq!(plan.language(), PlanLanguage::Cq);

    let setting = movies::setting(n0, 11);
    let conf = check_conformance(
        &plan,
        &setting.access,
        &setting.schema,
        &setting.views,
        &setting.budget,
    )
    .unwrap();
    assert_eq!(
        conf,
        Conformance::Conforms {
            fetch_bound: 2 * n0
        }
    );

    // ξ0 answers Q0 on generated instances, touching ≤ 2·N0 base tuples.
    let db = movies::generate(movies::MovieScale {
        persons: 3_000,
        movies: 1_000,
        n0,
        seed: 4,
    });
    let cache = setting.views.materialize(&db).unwrap();
    let idb = IndexedDatabase::build(db.clone(), setting.access.clone()).unwrap();
    let out = bqr_plan::execute(&plan, &idb, &cache).unwrap();
    let naive = bqr_query::eval::eval_cq(&movies::q0(), &db, None).unwrap();
    assert_eq!(out.tuples, naive);
    assert!(out.stats.fetched_tuples <= 2 * n0);
}

/// Example 2.3: the query expressed by ξ0 is the rewriting Qξ, and Qξ is
/// A0-equivalent to Q0 (after unfolding V1).
#[test]
fn example_2_3_expressed_query_is_a_equivalent_to_q0() {
    let n0 = 100;
    let setting = movies::setting(n0, 11);
    let plan = figure1_plan(&phi1(n0), &phi2()).unwrap();
    let expressed = bqr_plan::to_query::plan_to_cq(&plan, &setting.schema).unwrap();
    let unfolded = setting.views.unfold_cq(&expressed).unwrap();
    assert!(cq_a_equivalent(
        &unfolded,
        &movies::q0(),
        &setting.access,
        &setting.schema,
        &setting.budget
    )
    .unwrap());
}

/// Example 3.3: V2 (NASA employees) does not have bounded output under A1,
/// while the specialised movie lookup does; and the Example 3.3(b)-style
/// rewriting where the view only validates answers needs no bounded output.
#[test]
fn example_3_3_bounded_output_of_views() {
    let schema = movies::schema();
    let access = movies::access_schema(100);
    let v2 = parse_cq("V2(pid) :- person(pid, n, 'NASA')").unwrap();
    assert_eq!(
        cq_output(&v2, &access, &schema, &Budget::generous()).unwrap(),
        OutputBound::Unbounded
    );
    let by_studio = parse_cq("V(m) :- movie(m, n, 'Universal', '2014')").unwrap();
    assert_eq!(
        cq_output(&by_studio, &access, &schema, &Budget::generous()).unwrap(),
        OutputBound::Bounded(100)
    );

    // Example 3.3(b): Q(x) = Q3(x) ∧ V3(x) where Q3 is already bounded —
    // the view is only used for validation, so its (unbounded) output does
    // not matter.  Concretely: movies of Universal/2014 that are in V1.
    let setting = movies::setting(100, 40);
    let checker = ToppedChecker::new(&setting);
    let q = parse_cq("Q(m) :- movie(m, n, 'Universal', '2014'), V1(m)").unwrap();
    let analysis = checker.analyze_cq(&q).unwrap();
    assert!(analysis.topped, "{:?}", analysis.reason);
}

/// Theorem 3.4's Fig. 2 gadget, in miniature: the Boolean-domain constraints
/// force every element query to assign Boolean values, and the `R_o` bound
/// controls whether the output variable is bounded.
#[test]
fn figure_2_gadget_bounded_output() {
    let schema = DatabaseSchema::with_relations(&[("r01", &["a"]), ("ro", &["i", "x"])]).unwrap();
    let access = AccessSchema::new(vec![
        AccessConstraint::new("r01", &[], &["a"], 2).unwrap(),
        AccessConstraint::new("ro", &["i"], &["x"], 2).unwrap(),
    ]);
    // Q(w) :- r01(0), r01(1), r01(x), ro(k, 1), ro(k, 0), ro(k, w):
    // the ro-group of k already holds {0, 1}, so w is forced to one of them in
    // every element query — bounded output.
    let q = parse_cq("Q(w) :- r01(0), r01(1), r01(x), ro(k, 1), ro(k, 0), ro(k, w)").unwrap();
    let out = cq_output(&q, &access, &schema, &Budget::generous()).unwrap();
    assert!(out.is_bounded(), "{out:?}");

    // Dropping the two pinned ro-tuples leaves w unconstrained: unbounded.
    let q = parse_cq("Q(w) :- r01(0), r01(1), r01(x), ro(k, w)").unwrap();
    assert_eq!(
        cq_output(&q, &access, &schema, &Budget::generous()).unwrap(),
        OutputBound::Unbounded
    );
}

/// Golden test: the movie example pinned to exact answers on a fixed-seed
/// instance, under every planner strategy.  Planner changes that alter the
/// semantics of evaluation (rather than just its cost) fail here.
#[test]
fn golden_movie_example_answers_are_pinned() {
    use bqr_data::tuple;
    use bqr_query::eval::Evaluator;
    use bqr_query::{JoinStrategy, PlannerConfig};

    let db = bqr_workload::movies::generate(bqr_workload::movies::MovieScale {
        persons: 400,
        movies: 200,
        n0: 25,
        seed: 7,
    });
    assert_eq!(db.size(), 1992, "the seed-7 instance is pinned");
    for strategy in [
        JoinStrategy::Auto,
        JoinStrategy::Heuristic,
        JoinStrategy::CostBased,
        JoinStrategy::GenericJoin,
    ] {
        let evaluator = Evaluator::new().with_planner(PlannerConfig::with_strategy(strategy));
        let answers = evaluator
            .eval_cq(&bqr_workload::movies::q0(), &db, None)
            .unwrap();
        assert_eq!(
            answers,
            vec![tuple![108]],
            "Q0 answer drifted ({strategy:?})"
        );
    }
    let views = bqr_workload::movies::views().materialize(&db).unwrap();
    assert_eq!(
        views.extent("V1").unwrap().len(),
        152,
        "V1 extent cardinality is pinned"
    );
}

/// Golden test: the CDR workload pinned to exact answers and topped
/// decisions on a fixed-scale instance.  Guards both the evaluator and the
/// effective-syntax checker against silent semantic drift.
#[test]
fn golden_cdr_workload_answers_and_decisions_are_pinned() {
    use bqr_bench::checker_with_annotations;
    use bqr_data::{tuple, Tuple};
    use bqr_query::eval::eval_cq;
    use bqr_workload::cdr;

    let scale = cdr::CdrScale {
        customers: 300,
        days: 5,
        ..cdr::CdrScale::default()
    };
    let db = cdr::generate(scale);
    assert_eq!(db.size(), 11_633, "the fixed-scale CDR instance is pinned");
    let setting = cdr::setting(&scale, 120);
    let cache = setting.views.materialize(&db).unwrap();
    let checker = checker_with_annotations(&setting, &cdr::view_bounds());

    // (query name, answer count, topped?) for customer 17, day 3.
    let expected: &[(&str, usize, bool)] = &[
        ("callees_of_day", 0, true),
        ("callee_regions", 0, true),
        ("towers_visited", 5, true),
        ("regions_visited", 4, true),
        ("call_partners_plans", 0, true),
        ("premium_callees", 0, true),
        ("premium_callee_towers", 0, true),
        ("north_tower_visits", 1, true),
        ("second_hop_callees", 0, true),
        ("who_called_me", 8, false),
    ];
    let workload = cdr::workload(17, 3);
    assert_eq!(workload.len(), expected.len());
    for (q, &(name, count, topped)) in workload.iter().zip(expected) {
        assert_eq!(q.name, name);
        let answers = eval_cq(&q.query, &db, Some(&cache)).unwrap();
        assert_eq!(answers.len(), count, "{name} answer count drifted");
        let analysis = checker.analyze_cq(&q.query).unwrap();
        assert_eq!(analysis.topped, topped, "{name} topped decision drifted");
    }

    // Exact tuples for the non-empty answers.
    let towers = eval_cq(&workload[2].query, &db, Some(&cache)).unwrap();
    assert_eq!(
        towers,
        vec![tuple![31], tuple![37], tuple![38], tuple![56], tuple![74]]
    );
    let regions = eval_cq(&workload[3].query, &db, Some(&cache)).unwrap();
    let expected_regions: Vec<Tuple> = ["east", "north", "south", "west"]
        .iter()
        .map(|r| tuple![*r])
        .collect();
    assert_eq!(regions, expected_regions);
    let north = eval_cq(&workload[7].query, &db, Some(&cache)).unwrap();
    assert_eq!(north, vec![tuple![38]]);
    let callers = eval_cq(&workload[9].query, &db, Some(&cache)).unwrap();
    let expected_callers: Vec<Tuple> = [4i64, 27, 82, 179, 208, 215, 249, 283]
        .iter()
        .map(|c| tuple![*c])
        .collect();
    assert_eq!(callers, expected_callers);
}

/// Golden test: the paper's movie example served through the prepared path —
/// pinned answers on the Fig.-1 instance, a warm cache hit on the repeat
/// execution, and a cache invalidation after an update that changes the
/// answer.
#[test]
fn golden_movie_answers_through_the_prepared_path() {
    use bqr_data::{tuple, Database};
    use bqr_plan::{PipelineCache, PreparedPlan};
    use std::sync::Arc;

    let n0 = 100;
    let setting = movies::setting(n0, 11);
    let plan = figure1_plan(&phi1(n0), &phi2()).unwrap();
    let cache_handle = Arc::new(PipelineCache::new(8));
    let prepared = PreparedPlan::with_cache(plan.clone(), Arc::clone(&cache_handle));

    // The hand-built instance of Examples 1.1 / 2.2.
    let mut db = Database::empty(setting.schema.clone());
    db.insert("person", tuple![1, "Ann", "NASA"]).unwrap();
    db.insert("person", tuple![2, "Bob", "NASA"]).unwrap();
    db.insert("person", tuple![3, "Cat", "ESA"]).unwrap();
    db.insert("movie", tuple![10, "Lucy", "Universal", "2014"])
        .unwrap();
    db.insert("movie", tuple![11, "Ouija", "Universal", "2014"])
        .unwrap();
    db.insert("movie", tuple![12, "Her", "WB", "2013"]).unwrap();
    db.insert("rating", tuple![10, 5]).unwrap();
    db.insert("rating", tuple![11, 3]).unwrap();
    db.insert("rating", tuple![12, 5]).unwrap();
    db.insert("like", tuple![1, 10, "movie"]).unwrap();
    db.insert("like", tuple![2, 12, "movie"]).unwrap();
    db.insert("like", tuple![3, 11, "movie"]).unwrap();

    let views = setting.views.materialize(&db).unwrap();
    let idb = IndexedDatabase::build(db.clone(), setting.access.clone()).unwrap();
    for _ in 0..2 {
        let out = prepared.execute(&idb, &views).unwrap();
        assert_eq!(out.tuples, vec![tuple![10]], "only Lucy qualifies");
        assert!(out.stats.fetched_tuples <= 2 * n0);
        assert_eq!(out.stats.scanned_tuples, 0, "bounded plans never scan");
    }
    let warm = cache_handle.stats();
    assert_eq!((warm.misses, warm.hits), (1, 1), "{warm:?}");

    // The update scenario: a new Universal/2014 movie, rated 5 and liked by
    // a NASA person, lands; extents are refreshed.  The prepared handle must
    // recompile (epoch invalidation) and serve the new answer — and the
    // result still matches the naive oracle.
    db.insert("movie", tuple![13, "Vice", "Universal", "2014"])
        .unwrap();
    db.insert("rating", tuple![13, 5]).unwrap();
    db.insert("like", tuple![1, 13, "movie"]).unwrap();
    let views = setting.views.materialize(&db).unwrap();
    let idb = IndexedDatabase::build(db.clone(), setting.access.clone()).unwrap();
    let out = prepared.execute(&idb, &views).unwrap();
    assert_eq!(out.tuples, vec![tuple![10], tuple![13]], "Vice joined");
    assert_eq!(
        out.tuples,
        bqr_query::eval::eval_cq(&movies::q0(), &db, None).unwrap()
    );
    let updated = cache_handle.stats();
    assert_eq!(updated.misses, 2, "{updated:?}");
    assert_eq!(updated.invalidations, 1, "the stale entry was swept");
    // And the refreshed entry is warm again.
    assert_eq!(
        prepared.execute(&idb, &views).unwrap().tuples,
        vec![tuple![10], tuple![13]]
    );
    assert_eq!(cache_handle.stats().hits, 2);
}

/// Golden test: every topped CDR template of the pinned fixed-scale instance
/// answers identically through the prepared path and the naive evaluator,
/// with the repeat executions all served from the pipeline cache.
#[test]
fn golden_cdr_workload_through_the_prepared_path() {
    use bqr_bench::checker_with_annotations;
    use bqr_plan::{PipelineCache, PreparedPlan};
    use bqr_query::eval::eval_cq;
    use bqr_workload::cdr;
    use std::sync::Arc;

    let scale = cdr::CdrScale {
        customers: 300,
        days: 5,
        ..cdr::CdrScale::default()
    };
    let db = cdr::generate(scale);
    let setting = cdr::setting(&scale, 120);
    let cache = setting.views.materialize(&db).unwrap();
    let idb = IndexedDatabase::build(db.clone(), setting.access.clone()).unwrap();
    let checker = checker_with_annotations(&setting, &cdr::view_bounds());
    let cache_handle = Arc::new(PipelineCache::new(32));

    let mut topped = 0usize;
    for q in &cdr::workload(17, 3) {
        let analysis = checker.analyze_cq(&q.query).unwrap();
        if !analysis.topped {
            continue;
        }
        topped += 1;
        let prepared =
            PreparedPlan::with_cache(analysis.plan.clone().unwrap(), Arc::clone(&cache_handle));
        let expected = eval_cq(&q.query, &db, Some(&cache)).unwrap();
        for _ in 0..2 {
            let out = prepared.execute(&idb, &cache).unwrap();
            assert_eq!(out.tuples, expected, "{} drifted", q.name);
        }
    }
    assert_eq!(topped, 9, "the pinned workload has 9 topped templates");
    let stats = cache_handle.stats();
    assert_eq!(stats.misses, topped as u64, "{stats:?}");
    assert_eq!(
        stats.hits, topped as u64,
        "every repeat was warm: {stats:?}"
    );
    assert_eq!(stats.lookups, stats.hits + stats.misses);
}

/// The paper's movie example (Fig. 1 / Examples 1.1, 2.2, 2.3) served
/// through the `bqr::Engine` facade **alone** — no crate-internal types:
/// pinned answers on the hand-built instance, a warm cache hit on the
/// repeat execution, and a cache invalidation after an update that changes
/// the answer; the pinned session keeps the pre-update answer throughout.
#[test]
fn golden_movie_answers_through_the_engine_facade() {
    use bqr_data::{tuple, Database};

    let n0 = 100;
    let engine = bqr_engine::Engine::builder()
        .setting(movies::setting(n0, 40))
        .cache_capacity(8)
        .build()
        .unwrap();

    // The hand-built instance of Examples 1.1 / 2.2.
    let mut db = Database::empty(movies::schema());
    db.insert("person", tuple![1, "Ann", "NASA"]).unwrap();
    db.insert("person", tuple![2, "Bob", "NASA"]).unwrap();
    db.insert("person", tuple![3, "Cat", "ESA"]).unwrap();
    db.insert("movie", tuple![10, "Lucy", "Universal", "2014"])
        .unwrap();
    db.insert("movie", tuple![11, "Ouija", "Universal", "2014"])
        .unwrap();
    db.insert("movie", tuple![12, "Her", "WB", "2013"]).unwrap();
    db.insert("rating", tuple![10, 5]).unwrap();
    db.insert("rating", tuple![11, 3]).unwrap();
    db.insert("rating", tuple![12, 5]).unwrap();
    db.insert("like", tuple![1, 10, "movie"]).unwrap();
    db.insert("like", tuple![2, 12, "movie"]).unwrap();
    db.insert("like", tuple![3, 11, "movie"]).unwrap();
    engine.attach(db).unwrap();

    // Q0 is not boundedly rewritable without the view; Qξ over V1 is.
    assert!(!engine.analyze(movies::q0()).unwrap().bounded());
    let analysis = engine.analyze(movies::q_xi()).unwrap();
    assert!(analysis.bounded(), "{:?}", analysis.reason());
    assert!(analysis.fetch_bound().unwrap() <= 2 * n0, "|Dξ| ≤ 2·N0");
    assert!(analysis.explain().unwrap().contains("fetch["));

    engine.prepare("fig1", movies::q_xi()).unwrap();
    let session = engine.session();
    for _ in 0..2 {
        let out = session.execute("fig1").unwrap();
        assert_eq!(out.tuples, vec![tuple![10]], "only Lucy qualifies");
        assert!(out.stats.fetched_tuples <= 2 * n0);
        assert_eq!(out.stats.scanned_tuples, 0, "bounded plans never scan");
    }
    // The explain above compiled the pipeline, so both executions were warm.
    let warm = engine.cache_stats();
    assert_eq!((warm.misses, warm.hits), (1, 2), "{warm:?}");
    // The facade answer equals the naive baseline on the original query.
    assert_eq!(
        session.evaluate(movies::q0()).unwrap().tuples,
        vec![tuple![10]]
    );

    // The update scenario: a new Universal/2014 movie, rated 5 and liked by
    // a NASA person, lands through `mutate` — views re-materialise, epochs
    // move, and a fresh session serves the new answer through a recompile.
    engine
        .mutate(|db| {
            db.insert("movie", tuple![13, "Vice", "Universal", "2014"])?;
            db.insert("rating", tuple![13, 5])?;
            db.insert("like", tuple![1, 13, "movie"])
        })
        .unwrap();
    let fresh = engine.session();
    let out = fresh.execute("fig1").unwrap();
    assert_eq!(out.tuples, vec![tuple![10], tuple![13]], "Vice joined");
    assert_eq!(out.tuples, fresh.evaluate(movies::q0()).unwrap().tuples);
    let updated = engine.cache_stats();
    assert_eq!(updated.misses, 2, "{updated:?}");
    assert_eq!(updated.invalidations, 1, "the stale entry was swept");
    // The pre-update session still serves the pre-update answer.
    assert_eq!(session.execute("fig1").unwrap().tuples, vec![tuple![10]]);
    // And the refreshed entry is warm again.
    assert_eq!(
        fresh.execute("fig1").unwrap().tuples,
        vec![tuple![10], tuple![13]]
    );
}

/// Every topped CDR template of the pinned fixed-scale instance served
/// through the facade alone: 9 of 10 prepare successfully (by name), each
/// answers identically to the naive baseline, repeat executions are all
/// warm, and the non-topped template fails `prepare` with the typed
/// `NoRewriting` error.
#[test]
fn golden_cdr_workload_through_the_engine_facade() {
    use bqr_workload::cdr;

    let scale = cdr::CdrScale {
        customers: 300,
        days: 5,
        ..cdr::CdrScale::default()
    };
    let mut builder = bqr_engine::Engine::builder()
        .setting(cdr::setting(&scale, 120))
        .cache_capacity(32);
    for (name, bound) in cdr::view_bounds() {
        builder = builder.annotate_view_bound(name, bound);
    }
    let engine = builder.build().unwrap();
    engine.attach(cdr::generate(scale)).unwrap();
    let session = engine.session();

    let mut topped = 0usize;
    for q in &cdr::workload(17, 3) {
        match engine.prepare(q.name, &q.query) {
            Ok(statement) => {
                topped += 1;
                assert_eq!(statement.name(), q.name);
                let expected = session.evaluate(&q.query).unwrap();
                for _ in 0..2 {
                    let out = session.execute(q.name).unwrap();
                    assert_eq!(out.tuples, expected.tuples, "{} drifted", q.name);
                }
            }
            Err(bqr_engine::Error::NoRewriting { query, .. }) => {
                assert_eq!(
                    q.name, "who_called_me",
                    "only the pinned non-topped template"
                );
                assert!(query.contains("calls"));
            }
            Err(other) => panic!("{}: unexpected error {other}", q.name),
        }
    }
    assert_eq!(topped, 9, "the pinned workload has 9 topped templates");
    assert_eq!(engine.statement_names().len(), 9);
    let stats = engine.cache_stats();
    assert_eq!(stats.misses, topped as u64, "{stats:?}");
    assert_eq!(
        stats.hits, topped as u64,
        "every repeat was warm: {stats:?}"
    );
    assert_eq!(stats.lookups, stats.hits + stats.misses);
    assert_eq!(stats.invalidations, 0, "the instance never mutated");
}

/// The exact decision procedure agrees with the effective syntax on the
/// paper's running example, for a bound large enough for the Fig.-1 plan.
#[test]
fn exact_search_finds_the_figure1_rewriting_for_small_fragments() {
    // The full Q0 search space is too large for the exact procedure, so the
    // agreement is checked on the rating sub-query: Q(r) :- rating(42, r).
    let schema = DatabaseSchema::with_relations(&[("rating", &["mid", "rank"])]).unwrap();
    let access = AccessSchema::new(vec![phi2()]);
    let setting = RewritingSetting::new(schema.clone(), access.clone(), ViewSet::empty(), 3);
    let q = parse_cq("Q(r) :- rating(42, r)").unwrap();
    let exact = decide_vbrp(&VbrpInstance::new(setting, q.clone()), PlanLanguage::Cq).unwrap();
    assert!(exact.has_rewriting());

    let setting = RewritingSetting::new(schema, access, ViewSet::empty(), 10);
    let checker = ToppedChecker::new(&setting);
    let syntactic = checker.analyze_cq(&q).unwrap();
    assert!(syntactic.topped, "{:?}", syntactic.reason);
}
