//! Runtime-guardrail acceptance tests: deadlines, cancellation, budgets and
//! fetch caps through the `bqr::Engine` facade.
//!
//! The adversarial workload is the movie setting of Example 1.1 extended
//! with a deliberately dangerous cached view `VL(p, i) :- like(p, i,
//! 'movie')` over an 8 000-person instance: a cross product of three `VL`
//! scans is topped (three cached scans, tiny plan) yet enumerates
//! `24 000³` intermediate rows — exactly the shape a static bound cannot
//! catch and a runtime guard must.

use bqr::data::tuple;
use bqr::plan::{CancellationToken, ExecError, ExecOptions};
use bqr::query::parser::parse_cq;
use bqr::query::Budget;
use bqr::workload::movies::{self, MovieScale};
use bqr::{Engine, Error};
use std::time::{Duration, Instant};

/// The cross product of three `VL` scans: bounded per the checker (cached
/// views only), explosive at runtime.
const Q_ADV: &str = "Q(a, b, c, x, y, z) :- VL(a, x), VL(b, y), VL(c, z)";
const Q_XI: &str = "Q(mid) :- movie(mid, ym, 'Universal', '2014'), V1(mid), rating(mid, 5)";
const PERSONS: usize = 8_000;
const LIKES: usize = PERSONS * 3;

/// The 8k-person instance, seeded with rows that make the Fig.-1 scenario
/// non-empty (a NASA person liking a rated-5 Universal/2014 movie).
fn adversarial_instance() -> bqr::data::Database {
    let mut db = movies::generate(MovieScale {
        persons: PERSONS,
        movies: 200,
        n0: 100,
        seed: 11,
    });
    db.insert("person", tuple![900_001, "Ann", "NASA"]).unwrap();
    db.insert("movie", tuple![900_010, "Lucy", "Universal", "2014"])
        .unwrap();
    db.insert("rating", tuple![900_010, 5]).unwrap();
    db.insert("like", tuple![900_001, 900_010, "movie"])
        .unwrap();
    db
}

/// The movie engine with the extra `VL` view, attached to the 8k-person
/// instance, with the Fig.-1 statement prepared.
fn adversarial_engine() -> Engine {
    let mut views = movies::views();
    views
        .add_cq("VL", parse_cq("VL(p, i) :- like(p, i, 'movie')").unwrap())
        .unwrap();
    let setting =
        bqr::core::RewritingSetting::new(movies::schema(), movies::access_schema(100), views, 100);
    let engine = Engine::builder()
        .setting(setting)
        .annotate_view_bound("VL", LIKES)
        .cache_capacity(16)
        .build()
        .unwrap();
    engine.attach(adversarial_instance()).unwrap();
    engine.prepare("fig1", Q_XI).unwrap();
    engine
}

#[test]
fn deadlines_trip_promptly_on_serial_and_sharded_drivers() {
    let engine = adversarial_engine();
    let session = engine.session();
    let golden = session.execute("fig1").unwrap();
    assert!(!golden.tuples.is_empty(), "the golden scenario has answers");

    let analysis = engine.analyze(Q_ADV).unwrap();
    assert!(analysis.bounded(), "{:?}", analysis.reason());

    for options in [
        ExecOptions::serial().with_deadline_ms(50),
        ExecOptions::parallel(4).with_deadline_ms(50),
    ] {
        let start = Instant::now();
        let err = analysis.execute_with(&options).unwrap_err();
        let elapsed = start.elapsed();
        match &err {
            Error::Execution { statement, .. } => assert!(statement.contains("VL")),
            other => panic!("expected Execution, got {other:?}"),
        }
        assert_eq!(
            err.exec_error(),
            Some(&ExecError::DeadlineExceeded { deadline_ms: 50 }),
            "shards={:?}",
            options.shards
        );
        // Prompt: the 50ms deadline must not degenerate into seconds of
        // post-deadline work (generous ceiling for loaded CI machines).
        assert!(elapsed < Duration::from_secs(5), "took {elapsed:?}");
    }
    assert_eq!(engine.guard_stats().deadline_trips, 2);

    // The same engine serves the golden Fig.-1 scenario bit-identically
    // afterwards: tuples *and* FetchStats.
    assert_eq!(session.execute("fig1").unwrap(), golden);
    assert_eq!(engine.session().execute("fig1").unwrap(), golden);
}

#[test]
fn cancellation_from_another_thread_stops_execution() {
    let engine = adversarial_engine();
    engine.prepare("adv", Q_ADV).unwrap();
    let session = engine.session();
    let golden = session.execute("fig1").unwrap();

    let token = CancellationToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            token.cancel();
        })
    };
    // No deadline, no budget: without the token this product would grind
    // through 24 000³ rows.
    let start = Instant::now();
    let err = session
        .execute_with_token("adv", &ExecOptions::serial(), token)
        .unwrap_err();
    let elapsed = start.elapsed();
    canceller.join().unwrap();
    assert_eq!(err.exec_error(), Some(&ExecError::Cancelled));
    assert!(elapsed < Duration::from_secs(10), "took {elapsed:?}");
    assert_eq!(engine.guard_stats().cancellations, 1);
    assert_eq!(session.execute("fig1").unwrap(), golden);
}

#[test]
fn row_budgets_trip_before_the_product_materialises() {
    let engine = adversarial_engine();
    let analysis = engine.analyze(Q_ADV).unwrap();
    let options = ExecOptions::serial().with_row_budget(1_000_000);
    let start = Instant::now();
    let err = analysis.execute_with(&options).unwrap_err();
    // The product pre-charges its output cardinality, so the trip is
    // immediate — no million-row detour first.
    assert!(start.elapsed() < Duration::from_secs(5));
    assert_eq!(
        err.exec_error(),
        Some(&ExecError::MemoryBudgetExceeded {
            budget_rows: 1_000_000
        })
    );
    assert_eq!(engine.guard_stats().memory_trips, 1);
}

#[test]
fn fetch_caps_bound_runtime_io() {
    let engine = adversarial_engine();
    let session = engine.session();
    // The Fig.-1 plan fetches movie/rating tuples; a zero cap trips on the
    // first fetch, and a generous cap leaves the answer untouched.
    let err = session
        .execute_with("fig1", &ExecOptions::serial().with_fetch_budget(0))
        .unwrap_err();
    assert_eq!(
        err.exec_error(),
        Some(&ExecError::FetchBudgetExceeded { budget_tuples: 0 })
    );
    assert_eq!(engine.guard_stats().fetch_trips, 1);
    let ample = session
        .execute_with("fig1", &ExecOptions::serial().with_fetch_budget(1_000_000))
        .unwrap();
    assert_eq!(ample, session.execute("fig1").unwrap());
}

#[test]
fn engine_wide_guard_limits_apply_to_every_execution() {
    let mut views = movies::views();
    views
        .add_cq("VL", parse_cq("VL(p, i) :- like(p, i, 'movie')").unwrap())
        .unwrap();
    let setting =
        bqr::core::RewritingSetting::new(movies::schema(), movies::access_schema(100), views, 100);
    let engine = Engine::builder()
        .setting(setting)
        .annotate_view_bound("VL", LIKES)
        .guard_limits(bqr::plan::GuardLimits {
            deadline_ms: Some(50),
            max_intermediate_rows: Some(2_000_000),
            max_fetched_tuples: None,
        })
        .build()
        .unwrap();
    engine.attach(adversarial_instance()).unwrap();
    engine.prepare("fig1", Q_XI).unwrap();
    // Normal statements serve fine under the engine-wide limits...
    let out = engine.session().execute("fig1").unwrap();
    assert!(!out.tuples.is_empty());
    // ...while the adversarial ad-hoc query trips without per-call options.
    let err = engine.session().query(Q_ADV).unwrap_err();
    assert!(
        matches!(
            err.exec_error(),
            Some(ExecError::MemoryBudgetExceeded { .. } | ExecError::DeadlineExceeded { .. })
        ),
        "{err:?}"
    );
    // Stats reflect exactly one trip.
    let stats = engine.guard_stats();
    assert_eq!(stats.memory_trips + stats.deadline_trips, 1, "{stats:?}");
}

#[test]
fn exhausted_analysis_budgets_are_typed_errors_with_the_query_attached() {
    // The exact decision procedure is worst-case exponential and budgeted;
    // a tiny budget must surface as `Error::Analysis` naming the query —
    // never a panic, never an unbounded spin.
    let engine = Engine::builder()
        .setting(movies::setting(100, 40))
        .budget(Budget::tiny())
        .build()
        .unwrap();
    let err = engine
        .decide(movies::q0(), bqr::plan::PlanLanguage::Cq)
        .unwrap_err();
    match err {
        Error::Analysis { query, source } => {
            assert!(query.contains("person"), "{query}");
            assert!(source.to_string().contains("budget"), "{source}");
        }
        other => panic!("expected Analysis, got {other:?}"),
    }
    // The engine is still perfectly serviceable after the refusal.
    engine
        .attach(movies::generate(MovieScale::default()))
        .unwrap();
    assert!(engine.analyze(Q_XI).unwrap().bounded());
}

#[test]
fn a_panicking_mutation_leaves_the_facade_serving() {
    // Facade-level double of the engine unit test: panic containment holds
    // end-to-end, across sessions taken before and after the panic.
    let engine = Engine::builder()
        .setting(movies::setting(100, 40))
        .build()
        .unwrap();
    engine
        .attach(movies::generate(MovieScale {
            persons: 100,
            movies: 50,
            n0: 100,
            seed: 3,
        }))
        .unwrap();
    engine.prepare("fig1", Q_XI).unwrap();
    let pinned = engine.session();
    let golden = pinned.execute("fig1").unwrap();

    let err = engine
        .mutate(|_| -> bqr::data::Result<()> { panic!("chaos monkey") })
        .unwrap_err();
    assert!(matches!(err, Error::MutationPanicked { .. }), "{err:?}");

    assert_eq!(pinned.execute("fig1").unwrap(), golden, "pin survives");
    assert_eq!(engine.session().execute("fig1").unwrap(), golden);
    engine
        .mutate(|db| db.insert("rating", tuple![9_999, 5]))
        .unwrap();
}
