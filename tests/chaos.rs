//! Fault-injection (failpoint) matrix: every registered site is driven
//! through the `bqr::Engine` facade and the engine must stay serviceable —
//! no poisoned lock, no partial mutation, no stale read, no cached error.
//!
//! Compiled only under `--features failpoints` (see `[[test]]` in the root
//! manifest); CI runs it in release in a dedicated step.  The failpoint
//! registry is process-global, so every test serialises on [`CHAOS`].

use bqr::data::faults::{self, sites, FaultKind};
use bqr::data::{tuple, DataError, Database};
use bqr::plan::ExecOptions;
use bqr::query::parser::parse_cq;
use bqr::workload::movies::{self, MovieScale};
use bqr::{Engine, Error};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Process-global serialisation of the failpoint registry.
static CHAOS: Mutex<()> = Mutex::new(());

fn chaos_lock() -> std::sync::MutexGuard<'static, ()> {
    // A failed assertion in one test must not wedge the rest of the suite.
    let guard = CHAOS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    faults::clear_all();
    guard
}

const Q_XI: &str = "Q(mid) :- movie(mid, ym, 'Universal', '2014'), V1(mid), rating(mid, 5)";

/// The deterministic Example-1.1 instance (answer: movie 10).
fn fig1_instance() -> Database {
    let mut db = Database::empty(movies::schema());
    db.insert("person", tuple![1, "Ann", "NASA"]).unwrap();
    db.insert("person", tuple![2, "Bob", "NASA"]).unwrap();
    db.insert("movie", tuple![10, "Lucy", "Universal", "2014"])
        .unwrap();
    db.insert("movie", tuple![12, "Her", "WB", "2013"]).unwrap();
    db.insert("rating", tuple![10, 5]).unwrap();
    db.insert("rating", tuple![12, 5]).unwrap();
    db.insert("like", tuple![1, 10, "movie"]).unwrap();
    db.insert("like", tuple![2, 12, "movie"]).unwrap();
    db
}

fn fig1_engine() -> Engine {
    let engine = Engine::builder()
        .setting(movies::setting(100, 40))
        .cache_capacity(16)
        .build()
        .unwrap();
    engine.attach(fig1_instance()).unwrap();
    engine.prepare("fig1", Q_XI).unwrap();
    engine
}

#[test]
fn index_build_faults_never_unpublish_the_serving_version() {
    let _chaos = chaos_lock();
    let engine = fig1_engine();
    let golden = engine.session().execute("fig1").unwrap();

    {
        let _fp = faults::inject_guard(sites::INDEX_BUILD, FaultKind::Error);
        // The rebuild inside mutate hits the failpoint: the closure's insert
        // must not become a live version.
        let err = engine
            .mutate(|db| db.insert("rating", tuple![99, 1]))
            .unwrap_err();
        assert!(
            matches!(err, Error::Data(DataError::FaultInjected(_))),
            "{err:?}"
        );
        assert_eq!(engine.session().execute("fig1").unwrap(), golden);
        // Attaching a fresh database fails the same typed way.
        assert!(matches!(
            engine.attach(fig1_instance()),
            Err(Error::Data(DataError::FaultInjected(_)))
        ));
        assert_eq!(engine.session().execute("fig1").unwrap(), golden);
    }

    // Failpoint gone: the very next mutate publishes normally.
    engine
        .mutate(|db| db.insert("rating", tuple![99, 1]))
        .unwrap();
    assert_eq!(engine.session().execute("fig1").unwrap(), golden);
}

#[test]
fn snapshot_intern_panics_do_not_wedge_compilation() {
    let _chaos = chaos_lock();
    let engine = fig1_engine();

    // First-ever execution interns the pinned epoch's snapshots; the
    // injected panic aborts that compile mid-flight.
    faults::inject_times(sites::SNAPSHOT_INTERN, FaultKind::Panic, 1);
    let session = engine.session();
    let panicked = catch_unwind(AssertUnwindSafe(|| session.execute("fig1"))).is_err();
    assert!(panicked, "the injected panic must surface");
    assert!(!faults::is_active(sites::SNAPSHOT_INTERN), "consumed");

    // Nothing was cached for the aborted compile and no lock stayed
    // poisoned: the same session serves the correct answer immediately.
    let out = session.execute("fig1").unwrap();
    assert_eq!(out.tuples, vec![tuple![10]]);
    assert_eq!(session.execute("fig1").unwrap(), out);
    let stats = engine.cache_stats();
    assert_eq!(stats.lookups, stats.hits + stats.misses, "{stats:?}");
    engine
        .mutate(|db| db.insert("rating", tuple![99, 1]))
        .unwrap();
}

#[test]
fn cache_insert_errors_are_never_cached() {
    let _chaos = chaos_lock();
    let engine = fig1_engine();

    faults::inject_times(sites::CACHE_INSERT, FaultKind::Error, 1);
    let session = engine.session();
    let err = session.execute("fig1").unwrap_err();
    assert!(err.to_string().contains("failpoint"), "{err}");

    // The error was not cached: the retry recompiles and serves, and from
    // then on executions are warm hits.
    let out = session.execute("fig1").unwrap();
    assert_eq!(out.tuples, vec![tuple![10]]);
    assert_eq!(session.execute("fig1").unwrap(), out);
    let stats = engine.cache_stats();
    assert!(stats.hits >= 1, "{stats:?}");
    assert_eq!(stats.lookups, stats.hits + stats.misses, "{stats:?}");
}

#[test]
fn cache_insert_panics_poison_nothing_observable() {
    let _chaos = chaos_lock();
    let engine = fig1_engine();

    // This panic fires while the pipeline-cache mutex is held, poisoning
    // it; the serving path must recover rather than propagate the poison.
    faults::inject_times(sites::CACHE_INSERT, FaultKind::Panic, 1);
    let session = engine.session();
    let panicked = catch_unwind(AssertUnwindSafe(|| session.execute("fig1"))).is_err();
    assert!(panicked, "the injected panic must surface");

    let out = session.execute("fig1").unwrap();
    assert_eq!(out.tuples, vec![tuple![10]]);
    let stats = engine.cache_stats();
    assert_eq!(stats.lookups, stats.hits + stats.misses, "{stats:?}");
    engine
        .mutate(|db| db.insert("rating", tuple![99, 1]))
        .unwrap();
}

#[test]
fn thread_spawn_failures_fall_back_to_serial_with_identical_answers() {
    let _chaos = chaos_lock();
    // A sharded self-join over the cached `VL` view, large enough to clear
    // the parallel threshold.
    let mut views = movies::views();
    views
        .add_cq("VL", parse_cq("VL(p, i) :- like(p, i, 'movie')").unwrap())
        .unwrap();
    let setting =
        bqr::core::RewritingSetting::new(movies::schema(), movies::access_schema(100), views, 100);
    let engine = Engine::builder()
        .setting(setting)
        .annotate_view_bound("VL", 6_000)
        .build()
        .unwrap();
    engine
        .attach(movies::generate(MovieScale {
            persons: 2_000,
            movies: 100,
            n0: 100,
            seed: 5,
        }))
        .unwrap();
    engine
        .prepare("selfjoin", "Q(a, x, y) :- VL(a, x), VL(a, y)")
        .unwrap();

    let session = engine.session();
    let serial = session
        .execute_with("selfjoin", &ExecOptions::serial())
        .unwrap();

    {
        let _fp = faults::inject_guard(sites::THREAD_SPAWN, FaultKind::Error);
        let degraded = session
            .execute_with("selfjoin", &ExecOptions::parallel(4))
            .unwrap();
        assert_eq!(degraded, serial, "fallback changed the answer");
        assert!(
            engine.guard_stats().serial_fallbacks > 0,
            "{:?}",
            engine.guard_stats()
        );
    }
    // Threads back: still identical.
    let parallel = session
        .execute_with("selfjoin", &ExecOptions::parallel(4))
        .unwrap();
    assert_eq!(parallel, serial);
}

#[test]
fn morsel_dispatch_faults_degrade_the_operator_to_serial() {
    let _chaos = chaos_lock();
    // Same parallel self-join shape as the thread-spawn test, but the fault
    // fires *before* any worker exists: the whole operator must fall back to
    // the one-range serial path, with identical answers and a recorded
    // serial fallback per degraded dispatch.
    let mut views = movies::views();
    views
        .add_cq("VL", parse_cq("VL(p, i) :- like(p, i, 'movie')").unwrap())
        .unwrap();
    let setting =
        bqr::core::RewritingSetting::new(movies::schema(), movies::access_schema(100), views, 100);
    let engine = Engine::builder()
        .setting(setting)
        .annotate_view_bound("VL", 6_000)
        .build()
        .unwrap();
    engine
        .attach(movies::generate(MovieScale {
            persons: 2_000,
            movies: 100,
            n0: 100,
            seed: 5,
        }))
        .unwrap();
    engine
        .prepare("selfjoin", "Q(a, x, y) :- VL(a, x), VL(a, y)")
        .unwrap();

    let session = engine.session();
    let serial = session
        .execute_with("selfjoin", &ExecOptions::serial())
        .unwrap();

    {
        let _fp = faults::inject_guard(sites::MORSEL_DISPATCH, FaultKind::Error);
        let degraded = session
            .execute_with("selfjoin", &ExecOptions::parallel(4))
            .unwrap();
        assert_eq!(degraded, serial, "serial degradation changed the answer");
        assert!(
            engine.guard_stats().serial_fallbacks > 0,
            "{:?}",
            engine.guard_stats()
        );
    }
    // Fault cleared: the morsel path again agrees bit for bit.
    let parallel = session
        .execute_with("selfjoin", &ExecOptions::parallel(4))
        .unwrap();
    assert_eq!(parallel, serial);
}

#[test]
fn mutate_closure_faults_are_all_or_nothing() {
    let _chaos = chaos_lock();
    let engine = fig1_engine();
    let before = engine.database();

    faults::inject_times(sites::MUTATE_CLOSURE, FaultKind::Error, 1);
    let err = engine
        .mutate(|db| db.insert("rating", tuple![99, 1]))
        .unwrap_err();
    assert!(
        matches!(err, Error::Data(DataError::FaultInjected(_))),
        "{err:?}"
    );
    assert_eq!(engine.database(), before, "no partial commit");

    faults::inject_times(sites::MUTATE_CLOSURE, FaultKind::Panic, 1);
    let err = engine
        .mutate(|db| db.insert("rating", tuple![99, 1]))
        .unwrap_err();
    assert!(matches!(err, Error::MutationPanicked { .. }), "{err:?}");
    assert_eq!(engine.database(), before, "no partial commit");

    // Registry drained: the identical mutate now lands.
    engine
        .mutate(|db| db.insert("rating", tuple![99, 1]))
        .unwrap();
    assert_eq!(engine.database().size(), before.size() + 1);
}

/// The headline scenario: four concurrent pinned sessions keep reading
/// bit-identically while the writer side is bombarded with injected
/// faults — failed mutations interleaved with successful ones.
#[test]
fn concurrent_sessions_survive_a_fault_storm() {
    let _chaos = chaos_lock();
    let engine = fig1_engine();
    let golden = engine.session().execute("fig1").unwrap();
    assert_eq!(golden.tuples, vec![tuple![10]]);

    const READERS: usize = 4;
    const ROUNDS: usize = 12;
    let barrier = std::sync::Barrier::new(READERS + 1);
    std::thread::scope(|scope| {
        let engine = &engine;
        let barrier = &barrier;
        for reader in 0..READERS {
            scope.spawn(move || {
                // One reader stresses the sharded driver, the rest serial.
                let options = if reader == 0 {
                    ExecOptions::parallel(3)
                } else {
                    ExecOptions::serial()
                };
                barrier.wait();
                for _ in 0..ROUNDS {
                    let session = engine.session();
                    let pinned_epochs = session.epochs();
                    let first = session.execute_with("fig1", &options).unwrap();
                    for _ in 0..4 {
                        assert_eq!(session.execute_with("fig1", &options).unwrap(), first);
                        assert_eq!(session.epochs(), pinned_epochs, "the pin moved");
                    }
                    std::thread::yield_now();
                }
            });
        }

        barrier.wait();
        // The writer alternates injected failures with real commits.
        let mut committed = 0i64;
        for round in 0..ROUNDS {
            match round % 3 {
                0 => {
                    faults::inject_times(sites::MUTATE_CLOSURE, FaultKind::Panic, 1);
                    let err = engine
                        .mutate(|db| db.insert("rating", tuple![500 + round as i64, 1]))
                        .unwrap_err();
                    assert!(matches!(err, Error::MutationPanicked { .. }), "{err:?}");
                }
                1 => {
                    faults::inject_times(sites::INDEX_BUILD, FaultKind::Error, 1);
                    let err = engine
                        .mutate(|db| db.insert("rating", tuple![500 + round as i64, 1]))
                        .unwrap_err();
                    assert!(matches!(err, Error::Data(_)), "{err:?}");
                }
                _ => {
                    committed += 1;
                    engine
                        .mutate(|db| db.insert("rating", tuple![500 + round as i64, 1]))
                        .unwrap();
                }
            }
        }
        assert_eq!(
            engine.database().size() as i64,
            fig1_instance().size() as i64 + committed,
            "exactly the successful mutations landed"
        );
    });

    // Quiesced: fresh sessions serve the same Fig.-1 answer, counters
    // reconcile, and no lock anywhere is left poisoned.
    assert_eq!(
        engine.session().execute("fig1").unwrap().tuples,
        golden.tuples
    );
    let stats = engine.cache_stats();
    assert_eq!(stats.lookups, stats.hits + stats.misses, "{stats:?}");
    assert!(!faults::is_active(sites::MUTATE_CLOSURE));
    assert!(!faults::is_active(sites::INDEX_BUILD));
    engine
        .mutate(|db| db.insert("rating", tuple![9_999, 5]))
        .unwrap();
}

/// PR 7: a fault inside semi-naive view maintenance aborts the mutation
/// all-or-nothing — the closure's writes never become a live version, the
/// epochs of the serving version do not move, and once the registry drains
/// the identical mutation lands through the delta path.
#[test]
fn view_maintenance_faults_never_publish_a_partial_delta() {
    let _chaos = chaos_lock();
    let engine = fig1_engine();
    let golden = engine.session().execute("fig1").unwrap();
    let before = engine.database();
    let epochs = engine.session().epochs();

    // Typed error out of the maintenance step.
    faults::inject_times(sites::VIEW_MAINTAIN, FaultKind::Error, 1);
    let err = engine
        .mutate(|db| db.insert("rating", tuple![12, 4]))
        .unwrap_err();
    assert!(
        matches!(err, Error::Query(_)),
        "maintenance fault surfaces typed: {err:?}"
    );
    assert_eq!(engine.database(), before, "no partial delta published");
    assert_eq!(engine.session().epochs(), epochs, "epochs did not move");
    assert_eq!(engine.session().execute("fig1").unwrap(), golden);

    // Panic out of the maintenance step: contained, nothing published.
    faults::inject_times(sites::VIEW_MAINTAIN, FaultKind::Panic, 1);
    let err = engine
        .mutate(|db| db.insert("rating", tuple![12, 4]))
        .unwrap_err();
    assert!(matches!(err, Error::MutationPanicked { .. }), "{err:?}");
    assert_eq!(engine.database(), before, "no partial delta published");
    assert_eq!(engine.session().epochs(), epochs, "epochs did not move");

    // Registry drained: the identical mutation commits via the delta path.
    engine
        .mutate(|db| db.insert("rating", tuple![12, 4]))
        .unwrap();
    assert_eq!(engine.database().size(), before.size() + 1);
    assert_eq!(
        engine.session().execute("fig1").unwrap().tuples,
        golden.tuples
    );
}

/// PR 7: when delta application *does* fail mid-way, recovery through the
/// full-rebuild mode publishes a version bit-identical to what a delta
/// commit would have produced — same contents, same served answers.
#[test]
fn fallback_to_full_rebuild_is_bit_identical() {
    use bqr::MaintenanceMode;

    let _chaos = chaos_lock();
    let delta = fig1_engine();
    let rebuild = Engine::builder()
        .setting(movies::setting(100, 40))
        .cache_capacity(16)
        .maintenance(MaintenanceMode::Rebuild)
        .build()
        .unwrap();
    rebuild.attach(fig1_instance()).unwrap();
    rebuild.prepare("fig1", Q_XI).unwrap();

    // The delta engine's first attempt dies inside maintenance; retrying
    // after the fault clears must converge to the rebuild engine's state.
    faults::inject_times(sites::VIEW_MAINTAIN, FaultKind::Error, 1);
    let mutation = |db: &mut Database| {
        db.insert("like", tuple![2, 10, "movie"])?;
        db.remove("rating", &tuple![12, 5])?;
        Ok(())
    };
    assert!(engine_mutate_fails(&delta, mutation));
    delta.mutate(mutation).unwrap();
    rebuild.mutate(mutation).unwrap();

    let a = delta.session();
    let b = rebuild.session();
    assert_eq!(a.database(), b.database());
    for name in a.views().names() {
        assert_eq!(a.views().extent(name), b.views().extent(name), "{name}");
    }
    assert_eq!(a.execute("fig1").unwrap(), b.execute("fig1").unwrap());
}

fn engine_mutate_fails(
    engine: &Engine,
    mutation: impl Fn(&mut Database) -> bqr::data::Result<()>,
) -> bool {
    engine.mutate(|db| mutation(db)).is_err()
}

/// PR 9: a fault at the snapshot-patch site degrades the write to
/// from-scratch interning — the mutation still commits, and database
/// contents, view extents, and served answers stay bit-identical to an
/// un-faulted twin engine's.  A panic at the site is contained by the
/// all-or-nothing mutate.  Once the fault clears, patched writes agree
/// again.
#[test]
fn snapshot_patch_faults_degrade_to_from_scratch_interning() {
    let _chaos = chaos_lock();
    let faulty = fig1_engine();
    let clean = fig1_engine();

    let agree = |a: &Engine, b: &Engine| {
        let a = a.session();
        let b = b.session();
        assert_eq!(a.database(), b.database(), "contents diverged");
        for name in a.views().names() {
            assert_eq!(a.views().extent(name), b.views().extent(name), "{name}");
        }
        assert_eq!(a.execute("fig1").unwrap(), b.execute("fig1").unwrap());
    };

    // Warm both engines' snapshot anchors so the patch path is live.
    for engine in [&faulty, &clean] {
        engine
            .mutate(|db| db.insert("rating", tuple![800, 1]).map(drop))
            .unwrap();
    }
    agree(&faulty, &clean);

    // Error at the site while only the faulty engine writes: the patch
    // degrades to a from-scratch intern, the commit still lands.
    let mutation = |db: &mut Database| {
        db.insert("rating", tuple![12, 4])?;
        db.remove("like", &tuple![2, 12, "movie"])?;
        Ok(())
    };
    {
        let _fp = faults::inject_guard(sites::SNAPSHOT_PATCH, FaultKind::Error);
        faulty.mutate(mutation).unwrap();
    }
    clean.mutate(mutation).unwrap();
    agree(&faulty, &clean);

    // Panic at the site: contained by the engine, nothing published.
    let before = faulty.database();
    let epochs = faulty.session().epochs();
    faults::inject_times(sites::SNAPSHOT_PATCH, FaultKind::Panic, 1);
    let err = faulty
        .mutate(|db| db.insert("rating", tuple![801, 2]))
        .unwrap_err();
    assert!(matches!(err, Error::MutationPanicked { .. }), "{err:?}");
    assert_eq!(faulty.database(), before, "no partial commit");
    assert_eq!(faulty.session().epochs(), epochs, "epochs did not move");

    // Registry drained: the same write patches normally on both engines
    // and they still agree bit for bit.
    assert!(!faults::is_active(sites::SNAPSHOT_PATCH));
    for engine in [&faulty, &clean] {
        engine
            .mutate(|db| db.insert("rating", tuple![801, 2]).map(drop))
            .unwrap();
    }
    agree(&faulty, &clean);
}

/// PR 7: pinned readers never observe a half-applied delta.  Readers pin
/// sessions and re-execute while the writer commits real deltas (including
/// deletions) interleaved with injected maintenance faults; every pinned
/// session must stay bit-stable for its whole lifetime.
#[test]
fn pinned_sessions_never_observe_a_half_applied_delta() {
    let _chaos = chaos_lock();
    let engine = fig1_engine();

    const READERS: usize = 3;
    const ROUNDS: usize = 10;
    let barrier = std::sync::Barrier::new(READERS + 1);
    std::thread::scope(|scope| {
        let engine = &engine;
        let barrier = &barrier;
        for _ in 0..READERS {
            scope.spawn(move || {
                barrier.wait();
                for _ in 0..ROUNDS {
                    let session = engine.session();
                    let pinned_epochs = session.epochs();
                    let first = session.execute("fig1").unwrap();
                    // The Fig.-1 answer is either present or absent as a
                    // whole — a half-applied delta would show e.g. a rating
                    // tuple without its view-extent counterpart.
                    for _ in 0..4 {
                        assert_eq!(session.execute("fig1").unwrap(), first);
                        assert_eq!(session.epochs(), pinned_epochs, "the pin moved");
                    }
                    std::thread::yield_now();
                }
            });
        }

        barrier.wait();
        for round in 0..ROUNDS {
            match round % 4 {
                0 => {
                    faults::inject_times(sites::VIEW_MAINTAIN, FaultKind::Error, 1);
                    assert!(engine
                        .mutate(|db| db.remove("rating", &tuple![10, 5]))
                        .is_err());
                }
                1 => {
                    // A genuinely new tuple — a no-op insert would be
                    // elided before maintenance and never hit the site.
                    faults::inject_times(sites::VIEW_MAINTAIN, FaultKind::Panic, 1);
                    assert!(engine
                        .mutate(|db| db.insert("rating", tuple![700 + round as i64, 1]))
                        .is_err());
                }
                2 => {
                    // Real deletion of the answer's rating tuple.
                    engine
                        .mutate(|db| db.remove("rating", &tuple![10, 5]))
                        .unwrap();
                }
                _ => {
                    // And bring it back.
                    engine
                        .mutate(|db| db.insert("rating", tuple![10, 5]))
                        .unwrap();
                }
            }
        }
    });

    // ROUNDS is a multiple of 4, so the last committed op re-inserted the
    // tuple: quiesced state serves the original Fig.-1 answer.
    assert_eq!(
        engine.session().execute("fig1").unwrap().tuples,
        vec![tuple![10]]
    );
    assert!(!faults::is_active(sites::VIEW_MAINTAIN));
}

// ---------------------------------------------------------------------------
// Serving front: `SERVER_ACCEPT` and `BATCH_FLUSH`
// ---------------------------------------------------------------------------

fn fig1_server() -> bqr::server::Server {
    bqr::server::Server::with_config(
        fig1_engine(),
        bqr::server::ServerConfig {
            batch_window: std::time::Duration::from_micros(200),
            workers: 2,
            ..bqr::server::ServerConfig::default()
        },
    )
}

/// An injected accept fault (error or panic) sheds the submission with a
/// typed error before anything queues; the very next request is served
/// normally with the exact answer.
#[test]
fn server_accept_faults_shed_typed_and_recover() {
    use bqr::server::ServerError;

    let _chaos = chaos_lock();
    let server = fig1_server();
    let golden = server.engine().session().execute("fig1").unwrap();

    faults::inject_times(sites::SERVER_ACCEPT, FaultKind::Error, 1);
    let err = server.execute("fig1").unwrap_err();
    assert!(
        matches!(&err, ServerError::Engine(_)) && err.to_string().contains("failpoint"),
        "{err}"
    );

    faults::inject_times(sites::SERVER_ACCEPT, FaultKind::Panic, 1);
    let err = server.execute("fig1").unwrap_err();
    assert!(
        matches!(&err, ServerError::Internal(msg) if msg.contains("server.accept")),
        "{err}"
    );
    assert!(!faults::is_active(sites::SERVER_ACCEPT), "consumed");

    // Both sheds happened before admission; the next request serves exactly.
    assert_eq!(server.execute("fig1").unwrap().output, golden);
    server.drain();
    let stats = server.stats();
    assert_eq!((stats.shed, stats.rejected), (2, 2), "{stats:?}");
    assert_eq!((stats.admitted, stats.completed), (1, 1), "{stats:?}");
}

/// An injected `BATCH_FLUSH` error degrades read batches to serialised
/// per-request execution: every request is still answered exactly once,
/// with its own statement's bit-identical answer — no cross-contamination
/// between coalescing queues.
#[test]
fn batch_flush_errors_serialise_reads_without_changing_answers() {
    let _chaos = chaos_lock();
    let server = fig1_server();
    server.prepare("ranks", "Q(r) :- rating(10, r)").unwrap();
    let goldens = [
        server.engine().session().execute("fig1").unwrap(),
        server.engine().session().execute("ranks").unwrap(),
    ];
    assert_ne!(
        goldens[0], goldens[1],
        "distinct statements, distinct answers"
    );

    {
        let _fp = faults::inject_guard(sites::BATCH_FLUSH, FaultKind::Error);
        std::thread::scope(|scope| {
            for i in 0..8 {
                let server = &server;
                let goldens = &goldens;
                scope.spawn(move || {
                    let pick = i % 2;
                    let name = ["fig1", "ranks"][pick];
                    let response = server.execute(name).unwrap();
                    assert_eq!(
                        response.output, goldens[pick],
                        "serialised fallback changed `{name}`'s answer"
                    );
                    assert_eq!(response.coalesced, 1, "degraded flushes serve per-request");
                });
            }
        });
    }

    // Guard dropped: the coalescing path is back and still exact.
    assert_eq!(server.execute("fig1").unwrap().output, goldens[0]);
    server.drain();
    let stats = server.stats();
    assert_eq!(stats.completed, 9, "every request answered exactly once");
    assert_eq!((stats.rejected, stats.shed), (0, 0), "{stats:?}");
}

/// An injected `BATCH_FLUSH` panic sheds the read batch with typed errors —
/// never a wrong answer — and the next batch serves normally.
#[test]
fn batch_flush_panics_shed_reads_typed() {
    use bqr::server::ServerError;

    let _chaos = chaos_lock();
    let server = fig1_server();
    let golden = server.engine().session().execute("fig1").unwrap();

    faults::inject_times(sites::BATCH_FLUSH, FaultKind::Panic, 1);
    let err = server.execute("fig1").unwrap_err();
    assert!(
        matches!(&err, ServerError::Internal(msg) if msg.contains("batch.flush")),
        "{err}"
    );
    assert!(!faults::is_active(sites::BATCH_FLUSH), "consumed");

    assert_eq!(server.execute("fig1").unwrap().output, golden);
    server.drain();
    let stats = server.stats();
    assert_eq!(stats.shed, 1, "{stats:?}");
    // Both requests were *fulfilled* — one with a typed error — and none
    // was rejected at admission or dropped.
    assert_eq!((stats.completed, stats.rejected), (2, 0), "{stats:?}");
}

/// An injected `BATCH_FLUSH` error degrades a write burst to serialised
/// `Engine::mutate` calls: every closure is applied exactly once (a shared
/// counter proves it), in order, and every effect is visible afterwards.
#[test]
fn batch_flush_errors_serialise_writes_exactly_once() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let _chaos = chaos_lock();
    let server = fig1_server();
    let applied = Arc::new(AtomicUsize::new(0));

    {
        let _fp = faults::inject_guard(sites::BATCH_FLUSH, FaultKind::Error);
        let pendings: Vec<_> = (0..4)
            .map(|i| {
                let applied = Arc::clone(&applied);
                server.submit_mutate(move |db| {
                    applied.fetch_add(1, Ordering::Relaxed);
                    db.insert("rating", tuple![800 + i as i64, 1]).map(drop)
                })
            })
            .collect();
        for pending in pendings {
            pending.wait().unwrap();
        }
    }

    assert_eq!(
        applied.load(Ordering::Relaxed),
        4,
        "each closure ran exactly once"
    );
    let db = server.engine().database();
    let rating = db.relation("rating").unwrap();
    for i in 0..4i64 {
        assert!(rating.contains(&tuple![800 + i, 1]), "write {i} was lost");
    }
    server.drain();
    let stats = server.stats();
    assert_eq!(stats.writes, 4, "{stats:?}");
    assert_eq!((stats.rejected, stats.shed), (0, 0), "{stats:?}");
}

/// An injected `BATCH_FLUSH` panic sheds the write batch with typed errors
/// and applies **nothing** — no partial effects, no duplicates — and the
/// resubmitted write then lands exactly once.
#[test]
fn batch_flush_panics_shed_writes_without_applying() {
    use bqr::server::ServerError;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let _chaos = chaos_lock();
    let server = fig1_server();
    let applied = Arc::new(AtomicUsize::new(0));
    let closure = {
        let applied = Arc::clone(&applied);
        move |db: &mut Database| {
            applied.fetch_add(1, Ordering::Relaxed);
            db.insert("rating", tuple![900, 1]).map(drop)
        }
    };

    faults::inject_times(sites::BATCH_FLUSH, FaultKind::Panic, 1);
    let err = server.mutate(closure.clone()).unwrap_err();
    assert!(
        matches!(&err, ServerError::Internal(msg) if msg.contains("batch.flush")),
        "{err}"
    );
    assert_eq!(
        applied.load(Ordering::Relaxed),
        0,
        "the engine never saw the closure"
    );
    assert!(
        !server
            .engine()
            .database()
            .relation("rating")
            .unwrap()
            .contains(&tuple![900, 1]),
        "a shed write must not be applied"
    );

    // Failpoint consumed: the retry applies exactly once.
    server.mutate(closure).unwrap();
    assert_eq!(applied.load(Ordering::Relaxed), 1);
    assert!(server
        .engine()
        .database()
        .relation("rating")
        .unwrap()
        .contains(&tuple![900, 1]));
    server.drain();
    let stats = server.stats();
    assert_eq!((stats.shed, stats.writes), (1, 1), "{stats:?}");
}
