//! Concurrency stress for the `bqr-server` serving front: many closed-loop
//! client threads over mixed prepared statements, with and without
//! concurrent mutations, plus overload and teardown consistency.
//!
//! The invariants pinned here:
//! * every served answer is **bit-identical** — tuples *and* `FetchStats` —
//!   to an unbatched direct [`Session`](bqr::Session) execution on some
//!   published version (the exact golden without writes; a member of the
//!   prefix-golden set under a concurrent writer);
//! * overload surfaces as typed [`ServerError::Overloaded`] rejections,
//!   never as a wrong or partial answer;
//! * a drained server leaves the engine's [`CacheStats`] and `GuardStats`
//!   consistent.

use bqr::data::tuple;
use bqr::server::{Server, ServerConfig, ServerError};
use bqr::workload::movies::{self, MovieScale};
use bqr::Engine;
use std::time::Duration;

const Q_XI: &str = "Q(mid) :- movie(mid, ym, 'Universal', '2014'), V1(mid), rating(mid, 5)";
/// A point lookup whose answer grows under the stress writer (movie 10 is
/// rated 5 in the generated instance; the writer adds ranks ≥ 11, so
/// `fig1`'s answer never changes while `ranks_of_10` gains one tuple per
/// committed write).
const RANKS_OF_10: &str = "Q(r) :- rating(10, r)";

fn movie_engine() -> Engine {
    let engine = Engine::builder()
        .setting(movies::setting(100, 40))
        .cache_capacity(32)
        .build()
        .unwrap();
    engine
        .attach(movies::generate(MovieScale {
            persons: 800,
            movies: 300,
            n0: 50,
            seed: 7,
        }))
        .unwrap();
    engine
}

fn stress_config() -> ServerConfig {
    ServerConfig {
        batch_window: Duration::from_micros(100),
        workers: 4,
        ..ServerConfig::default()
    }
}

const STATEMENTS: [&str; 2] = ["fig1", "ranks_of_10"];

fn prepare_statements(server: &Server) {
    server.prepare("fig1", Q_XI).unwrap();
    server.prepare("ranks_of_10", RANKS_OF_10).unwrap();
}

/// Phase 1 — no concurrent writes: 8 closed-loop clients round-robin both
/// statements and every response must be bit-identical (tuples and
/// `FetchStats`) to a direct, unbatched session execution captured up
/// front.  Afterwards the drained server's engine reports consistent cache
/// and guard counters.
#[test]
fn eight_clients_read_bit_identically_to_direct_sessions() {
    const CLIENTS: usize = 8;
    const ITERS: usize = 25;

    let server = Server::with_config(movie_engine(), stress_config());
    prepare_statements(&server);
    let goldens: Vec<_> = STATEMENTS
        .iter()
        .map(|name| server.engine().session().execute(name).unwrap())
        .collect();

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let server = &server;
            let goldens = &goldens;
            scope.spawn(move || {
                for round in 0..ITERS {
                    let pick = (client + round) % STATEMENTS.len();
                    let response = server.execute(STATEMENTS[pick]).unwrap();
                    assert_eq!(
                        response.output, goldens[pick],
                        "served answer (tuples or FetchStats) diverged from the direct \
                         session execution of {}",
                        STATEMENTS[pick]
                    );
                }
            });
        }
    });
    server.drain();

    let stats = server.stats();
    assert_eq!(stats.completed, (CLIENTS * ITERS) as u64, "nothing dropped");
    assert_eq!(stats.rejected, 0, "default limits admit a closed loop");
    assert_eq!(stats.shed, 0);
    assert!(stats.read_batches >= 1);

    // Drained-server consistency: the pipeline cache accounted for every
    // lookup, and no guardrail tripped.
    let cache = server.engine().cache_stats();
    assert_eq!(cache.lookups, cache.hits + cache.misses);
    assert!(
        cache.lookups >= 2,
        "both statements were compiled and served"
    );
    let guards = server.engine().guard_stats();
    assert_eq!(
        (
            guards.cancellations,
            guards.deadline_trips,
            guards.memory_trips,
            guards.fetch_trips,
            guards.panics_contained,
        ),
        (0, 0, 0, 0, 0),
        "no guardrail may trip under plain stress"
    );
}

/// Phase 2 — a concurrent writer: 8 reader clients round-robin both
/// statements while one writer commits `WRITES` inserts through the
/// server's batched write path.  Every response must equal one of the
/// prefix goldens — the executions of the same statement on a twin engine
/// after 0, 1, …, `WRITES` of the same inserts — because every published
/// version applies a prefix of the writer's sequence, whether the writes
/// were batched into one publish or many.
#[test]
fn readers_under_a_concurrent_writer_serve_prefix_consistent_answers() {
    const CLIENTS: usize = 8;
    const ITERS: usize = 25;
    const WRITES: i64 = 6;

    let server = Server::with_config(movie_engine(), stress_config());
    prepare_statements(&server);

    // The prefix-golden set, from a twin engine fed the same inserts
    // serially: goldens[s][k] is statement s's exact output after the first
    // k writes.
    let twin = movie_engine();
    twin.prepare("fig1", Q_XI).unwrap();
    twin.prepare("ranks_of_10", RANKS_OF_10).unwrap();
    let mut goldens: Vec<Vec<_>> = vec![Vec::new(), Vec::new()];
    for (s, name) in STATEMENTS.iter().enumerate() {
        goldens[s].push(twin.session().execute(name).unwrap());
    }
    for i in 0..WRITES {
        twin.mutate(move |db| db.insert("rating", tuple![10, 11 + i]).map(drop))
            .unwrap();
        for (s, name) in STATEMENTS.iter().enumerate() {
            goldens[s].push(twin.session().execute(name).unwrap());
        }
    }
    assert_eq!(
        goldens[1].len(),
        (WRITES + 1) as usize,
        "every write grows the ranks_of_10 golden chain"
    );

    std::thread::scope(|scope| {
        let writer_server = &server;
        scope.spawn(move || {
            for i in 0..WRITES {
                writer_server
                    .mutate(move |db| db.insert("rating", tuple![10, 11 + i]).map(drop))
                    .unwrap();
            }
        });
        for client in 0..CLIENTS {
            let server = &server;
            let goldens = &goldens;
            scope.spawn(move || {
                for round in 0..ITERS {
                    let pick = (client + round) % STATEMENTS.len();
                    let response = server.execute(STATEMENTS[pick]).unwrap();
                    assert!(
                        goldens[pick].contains(&response.output),
                        "{}: served answer matches no prefix of the write sequence",
                        STATEMENTS[pick]
                    );
                }
            });
        }
    });
    server.drain();

    let stats = server.stats();
    assert_eq!(stats.completed, (CLIENTS * ITERS) as u64 + WRITES as u64);
    assert_eq!(stats.writes, WRITES as u64);
    assert_eq!(stats.rejected, 0);
    // All writes landed: the final served answer is the full-prefix golden.
    assert_eq!(
        server.engine().session().execute("ranks_of_10").unwrap(),
        *goldens[1].last().unwrap()
    );
    let cache = server.engine().cache_stats();
    assert_eq!(cache.lookups, cache.hits + cache.misses);
}

/// Overload: a server admitting at most one request at a time, hammered by
/// 8 clients, must reject with typed `Overloaded` (carrying the configured
/// retry hint) — and every admitted answer is still bit-identical to the
/// direct golden.  Errors never corrupt answers.
#[test]
fn overload_rejections_are_typed_and_answers_stay_exact() {
    const CLIENTS: usize = 8;
    const ITERS: usize = 20;

    let server = Server::with_config(
        movie_engine(),
        ServerConfig {
            max_concurrent: 1,
            retry_after_ms: 3,
            ..stress_config()
        },
    );
    prepare_statements(&server);
    let golden = server.engine().session().execute("fig1").unwrap();

    let served = std::sync::atomic::AtomicU64::new(0);
    let rejected = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let server = &server;
            let golden = &golden;
            let (served, rejected) = (&served, &rejected);
            scope.spawn(move || {
                for _ in 0..ITERS {
                    match server.execute("fig1") {
                        Ok(response) => {
                            assert_eq!(response.output, *golden, "admitted answers stay exact");
                            served.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(ServerError::Overloaded { retry_after_ms }) => {
                            assert_eq!(retry_after_ms, 3, "the configured retry hint");
                            rejected.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(other) => panic!("only Overloaded is acceptable, got {other:?}"),
                    }
                }
            });
        }
    });
    server.drain();

    let stats = server.stats();
    assert_eq!(
        stats.completed + stats.rejected,
        (CLIENTS * ITERS) as u64,
        "every request was answered or typed-rejected — none dropped"
    );
    assert_eq!(
        stats.completed,
        served.load(std::sync::atomic::Ordering::Relaxed)
    );
    assert_eq!(
        stats.rejected,
        rejected.load(std::sync::atomic::Ordering::Relaxed)
    );
    assert!(
        stats.completed >= 1,
        "a capacity of one still serves a closed loop"
    );
    assert!(
        stats.rejected >= 1,
        "8 clients against a capacity of one must overload"
    );
}

/// Cost-class admission: fetch-bound budgets price statements by `|D_ξ|`,
/// so a budget below the statement's cost class rejects deterministically
/// while a cheaper statement still serves.
#[test]
fn cost_class_budget_rejects_expensive_statements_only() {
    let probe = Server::new(movie_engine());
    let expensive = probe.prepare("fig1", Q_XI).unwrap();
    let cheap = probe.prepare("ranks_of_10", RANKS_OF_10).unwrap();
    assert!(
        cheap < expensive,
        "the point lookup must be the cheaper cost class ({cheap} vs {expensive})"
    );

    // Budget admits the point lookup but not the Fig. 1 rewriting.
    let server = Server::with_config(
        movie_engine(),
        ServerConfig {
            max_outstanding_cost: cheap,
            ..stress_config()
        },
    );
    prepare_statements(&server);
    let golden = server.engine().session().execute("ranks_of_10").unwrap();
    assert!(matches!(
        server.execute("fig1"),
        Err(ServerError::Overloaded { .. })
    ));
    assert_eq!(server.execute("ranks_of_10").unwrap().output, golden);
    let stats = server.stats();
    assert_eq!((stats.rejected, stats.completed), (1, 1));
}
