//! Differential tests for the compiled plan-execution pipeline: randomized
//! plans and instances, executed by the compiled pipeline (serial,
//! morsel-parallel at fixed worker counts, and auto-sized — every
//! `ExecOptions` shape) and by the retained
//! tree-walking interpreter `exec::reference`, asserting **identical answer
//! tuples and identical `FetchStats`** — the `|D_ξ|` accounting is part of
//! the bounded-rewriting contract, not a side channel.

use bqr_data::{
    tuple, AccessConstraint, AccessSchema, Database, DatabaseSchema, IndexedDatabase, Value,
};
use bqr_plan::builder::Plan;
use bqr_plan::exec::{execute_with, reference, ExecOptions};
use bqr_plan::QueryPlan;
use bqr_query::parser::parse_cq;
use bqr_query::{MaterializedViews, ViewSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MAX_ARITY: usize = 6;

fn schema() -> DatabaseSchema {
    DatabaseSchema::with_relations(&[("r", &["a", "b"]), ("s", &["b", "c"]), ("t", &["c"])])
        .unwrap()
}

fn constraints() -> Vec<AccessConstraint> {
    vec![
        AccessConstraint::new("r", &["a"], &["b"], 3).unwrap(),
        AccessConstraint::new("s", &["b"], &["c"], 4).unwrap(),
        // Empty X: the fetch retrieves the whole bounded relation.
        AccessConstraint::new("t", &[], &["c"], 16).unwrap(),
    ]
}

/// A random instance over a small value domain, so joins and fetches hit.
fn random_instance(rng: &mut StdRng) -> (IndexedDatabase, MaterializedViews) {
    let mut db = Database::empty(schema());
    for _ in 0..rng.gen_range(10..40usize) {
        db.insert(
            "r",
            tuple![rng.gen_range(0..12i64), rng.gen_range(0..12i64)],
        )
        .unwrap();
    }
    for _ in 0..rng.gen_range(10..40usize) {
        db.insert(
            "s",
            tuple![rng.gen_range(0..12i64), rng.gen_range(0..12i64)],
        )
        .unwrap();
    }
    for _ in 0..rng.gen_range(1..8usize) {
        db.insert("t", tuple![rng.gen_range(0..12i64)]).unwrap();
    }
    let mut views = ViewSet::empty();
    views
        .add_cq("Vr", parse_cq("Vr(x, y) :- r(x, y)").unwrap())
        .unwrap();
    views
        .add_cq("W", parse_cq("W(x) :- s(x, y)").unwrap())
        .unwrap();
    let cache = views.materialize(&db).unwrap();
    let idb = IndexedDatabase::build(db, AccessSchema::new(constraints())).unwrap();
    (idb, cache)
}

fn rand_value(rng: &mut StdRng) -> Value {
    Value::int(rng.gen_range(0..12i64))
}

fn leaf(rng: &mut StdRng) -> Plan {
    match rng.gen_range(0..5u32) {
        0 => Plan::constant(vec![rand_value(rng)]),
        1 => Plan::constant(vec![rand_value(rng), rand_value(rng)]),
        2 => Plan::constant(Vec::<Value>::new()),
        3 => Plan::view("Vr", 2),
        _ => Plan::view("W", 1),
    }
}

/// Project both sides of a binary set operator to a shared arity.
fn align(rng: &mut StdRng, left: Plan, right: Plan) -> (Plan, Plan) {
    let arity = left.arity().min(right.arity());
    let shrink = |rng: &mut StdRng, p: Plan| {
        if p.arity() == arity {
            return p;
        }
        let mut cols: Vec<usize> = (0..p.arity()).collect();
        // Random column choice keeps the generator from always aligning on
        // prefixes.
        while cols.len() > arity {
            let drop = rng.gen_range(0..cols.len());
            cols.remove(drop);
        }
        p.project(cols)
    };
    (shrink(rng, left), shrink(rng, right))
}

fn random_conditions(rng: &mut StdRng, arity: usize) -> Vec<bqr_plan::SelectCondition> {
    use bqr_plan::SelectCondition;
    let mut conds = Vec::new();
    for _ in 0..rng.gen_range(1..3usize) {
        let c = rng.gen_range(0..arity);
        conds.push(match rng.gen_range(0..4u32) {
            0 => SelectCondition::ColEqConst(c, rand_value(rng)),
            1 => SelectCondition::ColNeConst(c, rand_value(rng)),
            2 => SelectCondition::ColEqCol(c, rng.gen_range(0..arity)),
            _ => SelectCondition::ColNeCol(c, rng.gen_range(0..arity)),
        });
    }
    conds
}

fn gen_plan(rng: &mut StdRng, depth: usize) -> Plan {
    if depth == 0 {
        return leaf(rng);
    }
    match rng.gen_range(0..12u32) {
        0 | 1 => leaf(rng),
        2 | 3 => {
            // Projection (possibly widening by repeating columns, possibly
            // onto the empty column list).
            let child = gen_plan(rng, depth - 1);
            if child.arity() == 0 {
                return child;
            }
            let n = rng.gen_range(0..=child.arity().min(3));
            let cols: Vec<usize> = (0..n).map(|_| rng.gen_range(0..child.arity())).collect();
            child.project(cols)
        }
        4 => {
            let child = gen_plan(rng, depth - 1);
            if child.arity() == 0 {
                return child;
            }
            let conds = random_conditions(rng, child.arity());
            child.select(conds)
        }
        5 => gen_plan(rng, depth - 1).rename(),
        6 | 7 => {
            // A fetch through a random constraint, padding the input with
            // constant columns when it is too narrow for the key.
            let constraint = constraints()[rng.gen_range(0..3usize)].clone();
            let key_len = constraint.x().len();
            let mut child = gen_plan(rng, depth - 1);
            while child.arity() < key_len {
                child = child.product(Plan::constant(vec![rand_value(rng)]));
            }
            let mut cols: Vec<usize> = (0..child.arity()).collect();
            while cols.len() > key_len {
                let drop = rng.gen_range(0..cols.len());
                cols.remove(drop);
            }
            child.fetch(constraint, cols)
        }
        8 => {
            let left = gen_plan(rng, depth - 1);
            let right = gen_plan(rng, depth - 1);
            if left.arity() + right.arity() > MAX_ARITY {
                return left;
            }
            left.product(right)
        }
        9 => {
            // The σ-over-× join pattern (compiles to a hash join).
            let left = gen_plan(rng, depth - 1);
            let right = gen_plan(rng, depth - 1);
            if left.arity() == 0 || right.arity() == 0 || left.arity() + right.arity() > MAX_ARITY {
                return left;
            }
            let pairs = vec![(
                rng.gen_range(0..left.arity()),
                rng.gen_range(0..right.arity()),
            )];
            left.join_eq(right, &pairs)
        }
        10 => {
            let (left, right) = {
                let l = gen_plan(rng, depth - 1);
                let r = gen_plan(rng, depth - 1);
                align(rng, l, r)
            };
            left.union(right)
        }
        _ => {
            let (left, right) = {
                let l = gen_plan(rng, depth - 1);
                let r = gen_plan(rng, depth - 1);
                align(rng, l, r)
            };
            left.difference(right)
        }
    }
}

fn all_options() -> Vec<ExecOptions> {
    vec![
        ExecOptions::serial(),
        ExecOptions::parallel(2),
        ExecOptions::parallel(4),
        ExecOptions::parallel_auto(),
    ]
}

fn assert_equivalent(plan: &QueryPlan, idb: &IndexedDatabase, views: &MaterializedViews) {
    let expected = reference::execute(plan, idb, views).expect("generated plans execute");
    for options in all_options() {
        let got = execute_with(plan, idb, views, &options).expect("generated plans compile");
        assert_eq!(
            expected.tuples, got.tuples,
            "answers diverge under {options:?} on\n{plan}"
        );
        assert_eq!(
            expected.stats, got.stats,
            "FetchStats diverge under {options:?} on\n{plan}"
        );
    }
}

/// ≥ 200 randomized plan/instance pairs, every `ExecOptions`, tuples and
/// stats equal.
#[test]
fn compiled_pipeline_matches_reference_on_random_plans() {
    let mut rng = StdRng::seed_from_u64(0xB9_5EED);
    let mut executed = 0usize;
    let mut with_fetch = 0usize;
    let mut with_join = 0usize;
    let mut attempts = 0usize;
    while executed < 250 {
        attempts += 1;
        assert!(attempts < 5_000, "generator degenerated");
        let (idb, views) = random_instance(&mut rng);
        let Ok(plan) = gen_plan(&mut rng, 3).build() else {
            continue;
        };
        assert_equivalent(&plan, &idb, &views);
        executed += 1;
        if !plan.fetches().is_empty() {
            with_fetch += 1;
        }
        if format!("{plan}").contains('×') {
            with_join += 1;
        }
    }
    // The generator must actually exercise the interesting operators.
    assert!(with_fetch >= 30, "only {with_fetch} plans fetched");
    assert!(with_join >= 30, "only {with_join} plans joined");
}

/// A deterministic case large enough to cross the parallel threshold, so the
/// morsel-parallel code path itself is exercised (random instances stay
/// below it).
#[test]
fn sharded_parallel_path_is_exercised_and_identical() {
    let schema = DatabaseSchema::with_relations(&[("e", &["x", "y"])]).unwrap();
    let mut db = Database::empty(schema);
    for i in 0..6_000i64 {
        db.insert("e", tuple![i % 600, i]).unwrap();
    }
    let mut views = ViewSet::empty();
    views
        .add_cq("E", parse_cq("E(x, y) :- e(x, y)").unwrap())
        .unwrap();
    let cache = views.materialize(&db).unwrap();
    let idb = IndexedDatabase::build(db, AccessSchema::empty()).unwrap();
    let plan = Plan::view("E", 2)
        .join_eq(Plan::view("E", 2), &[(0, 0)])
        .select(vec![bqr_plan::SelectCondition::ColNeCol(1, 3)])
        .project(vec![1, 3])
        .build()
        .unwrap();
    assert!(
        cache.extent("E").unwrap().len() >= ExecOptions::PARALLEL_MIN_ROWS,
        "the probe side must cross the parallel threshold"
    );
    assert_equivalent(&plan, &idb, &cache);
}
