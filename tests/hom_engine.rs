//! Engine-equivalence property tests: the slot-based homomorphism engine
//! (`bqr_query::hom`) must return exactly the answer sets of the retained
//! pre-refactor reference engine (`bqr_query::hom::reference`) on randomized
//! conjunctive queries and instances, and the cached-index path must stay
//! coherent under relation mutation.

use bqr_data::{Database, DatabaseSchema, IndexCache, Relation, Value};
use bqr_query::eval::{eval_cq, Evaluator};
use bqr_query::hom::{
    enumerate_homomorphisms_cached, has_homomorphism_cached, reference, Assignment, MatchLimit,
};
use bqr_query::ConjunctiveQuery;
use bqr_workload::random::{generate_queries, RandomQueryConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

fn small_schema() -> DatabaseSchema {
    DatabaseSchema::with_relations(&[("r", &["a", "b"]), ("s", &["a", "b", "c"]), ("t", &["a"])])
        .unwrap()
}

/// A deterministic random instance over `small_schema`.
fn random_db(seed: u64, tuples_per_relation: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::empty(small_schema());
    for _ in 0..tuples_per_relation {
        let a = rng.gen_range(0..5i64);
        let b = rng.gen_range(0..4i64);
        let c = rng.gen_range(0..3i64);
        db.insert("r", bqr_data::tuple![a, b]).unwrap();
        db.insert("s", bqr_data::tuple![b, c, a]).unwrap();
        db.insert("t", bqr_data::tuple![c]).unwrap();
    }
    db
}

/// Random CQs over the schema, via the workload generator.
fn random_queries(seed: u64, atoms: usize, count: usize) -> Vec<ConjunctiveQuery> {
    generate_queries(
        &small_schema(),
        &RandomQueryConfig {
            atoms,
            constant_probability: 0.35,
            constants: (0..5).map(Value::int).collect(),
            head_variables: 2,
            seed,
        },
        count,
    )
}

fn relation_map(db: &Database) -> BTreeMap<String, &Relation> {
    db.relations().map(|r| (r.name().to_string(), r)).collect()
}

/// Answer set of an engine run, as comparable name→value maps.
fn answer_set(result: Vec<Assignment>) -> BTreeSet<Assignment> {
    result.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The slot engine and the reference engine return identical answer
    /// sets on randomized CQs and instances — including through a shared,
    /// reused index cache.
    #[test]
    fn slot_engine_matches_reference_on_random_workloads(
        db_seed in 0u64..50,
        query_seed in 0u64..50,
        atoms in 1usize..5,
    ) {
        let db = random_db(db_seed, 12);
        let rels = relation_map(&db);
        let cache = IndexCache::new();
        for q in random_queries(query_seed, atoms, 6) {
            let slot = enumerate_homomorphisms_cached(
                q.atoms(), &rels, &Assignment::new(), MatchLimit::AtMost(100_000), &cache,
            ).unwrap();
            let naive = reference::enumerate_homomorphisms(
                q.atoms(), &rels, &Assignment::new(), MatchLimit::AtMost(100_000),
            ).unwrap();
            prop_assert_eq!(
                answer_set(slot.clone()), answer_set(naive),
                "engines disagree on {}", q
            );
            // The boolean variant must agree with non-emptiness.
            let any = has_homomorphism_cached(q.atoms(), &rels, &Assignment::new(), &cache).unwrap();
            prop_assert_eq!(any, !slot.is_empty(), "has_homomorphism disagrees on {}", q);
        }
    }

    /// Partial initial assignments restrict both engines identically.
    #[test]
    fn initial_assignments_agree_across_engines(
        db_seed in 0u64..30,
        query_seed in 0u64..30,
        pinned in 0i64..5,
    ) {
        let db = random_db(db_seed, 10);
        let rels = relation_map(&db);
        let cache = IndexCache::new();
        for q in random_queries(query_seed, 2, 4) {
            // Pin the first variable of the query, if any.
            let mut initial = Assignment::new();
            if let Some(v) = q.variables().into_iter().next() {
                initial.insert(v, Value::int(pinned));
            }
            let slot = enumerate_homomorphisms_cached(
                q.atoms(), &rels, &initial, MatchLimit::AtMost(100_000), &cache,
            ).unwrap();
            let naive = reference::enumerate_homomorphisms(
                q.atoms(), &rels, &initial, MatchLimit::AtMost(100_000),
            ).unwrap();
            prop_assert_eq!(answer_set(slot), answer_set(naive), "pinned runs disagree on {}", q);
        }
    }

    /// A cached evaluator stays coherent when the database mutates between
    /// evaluations: answers always equal a fresh, uncached evaluation.
    #[test]
    fn cached_evaluation_tracks_mutations(
        db_seed in 0u64..30,
        query_seed in 0u64..30,
        extra_a in 0i64..5,
        extra_b in 0i64..4,
    ) {
        let mut db = random_db(db_seed, 8);
        let evaluator = Evaluator::new();
        let queries = random_queries(query_seed, 2, 3);
        for q in &queries {
            prop_assert_eq!(
                evaluator.eval_cq(q, &db, None).unwrap(),
                eval_cq(q, &db, None).unwrap(),
                "warm cache diverged before mutation on {}", q
            );
        }
        // Mutate: the epoch bump must invalidate every affected index.
        db.insert("r", bqr_data::tuple![extra_a, extra_b]).unwrap();
        for q in &queries {
            prop_assert_eq!(
                evaluator.eval_cq(q, &db, None).unwrap(),
                eval_cq(q, &db, None).unwrap(),
                "warm cache diverged after mutation on {}", q
            );
        }
    }
}

/// Deterministic (non-property) check of the invalidation contract at the
/// cache level: a mutation re-stamps the relation, the stale index is never
/// served again, and the fresh index reflects the new contents.
#[test]
fn index_cache_invalidation_on_mutation() {
    let cache = IndexCache::new();
    let mut db = random_db(7, 6);
    {
        let r = db.relation("r").unwrap();
        let before = cache.index_for(r, &[0]);
        assert_eq!(before.len(), r.len());
        assert!(std::rc::Rc::ptr_eq(&before, &cache.index_for(r, &[0])));
    }
    let misses_before = cache.misses();
    db.insert("r", bqr_data::tuple![99, 99]).unwrap();
    let r = db.relation("r").unwrap();
    let after = cache.index_for(r, &[0]);
    assert_eq!(
        cache.misses(),
        misses_before + 1,
        "mutation must force a rebuild"
    );
    assert_eq!(after.len(), r.len());
    assert_eq!(after.probe(&[Value::int(99)]).len(), 1);
}
