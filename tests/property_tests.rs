//! Property-based tests on the core invariants.
//!
//! The deterministic-plan tests at the bottom guard against a failure mode
//! this suite used to be exposed to: with a fixed proptest seed, a plan or
//! result ordering that depended on hash-map iteration order could make the
//! same case pass and fail across runs.  Plans are now a pure function of
//! the query and the snapshot statistics, and every evaluation result is
//! sorted, so a fixed seed pins the whole execution.

use bqr_core::topped::ToppedChecker;
use bqr_data::{tuple, AccessConstraint, AccessSchema, Database, DatabaseSchema, IndexedDatabase};
use bqr_plan::builder::Plan;
use bqr_plan::exec::{execute_with, reference, ExecOptions};
use bqr_plan::SelectCondition;
use bqr_query::aequiv::cq_a_contained_in;
use bqr_query::bounded_output::cq_output;
use bqr_query::containment::cq_contained_in;
use bqr_query::element::element_queries;
use bqr_query::eval::{eval_cq, eval_ucq};
use bqr_query::{Budget, UnionQuery, ViewSet};
use bqr_workload::random::{generate_queries, RandomQueryConfig};
use proptest::prelude::*;

fn small_schema() -> DatabaseSchema {
    DatabaseSchema::with_relations(&[("r", &["a", "b"]), ("s", &["a", "b"])]).unwrap()
}

fn small_access(n: usize) -> AccessSchema {
    AccessSchema::new(vec![
        AccessConstraint::new("r", &["a"], &["b"], n).unwrap(),
        AccessConstraint::new("s", &["a"], &["b"], 1).unwrap(),
    ])
}

/// Generate a small random database over `small_schema` that satisfies the
/// access schema by construction (at most `n` b-values per a-value in r, one
/// in s).
fn db_strategy(n: usize) -> impl Strategy<Value = Database> {
    let r_rows = prop::collection::vec((0i64..4, 0i64..3), 0..12);
    let s_rows = prop::collection::vec((0i64..4, 0i64..4), 0..8);
    (r_rows, s_rows).prop_map(move |(r, s)| {
        let mut db = Database::empty(small_schema());
        let mut per_key = std::collections::BTreeMap::new();
        for (a, b) in r {
            let set = per_key
                .entry(a)
                .or_insert_with(std::collections::BTreeSet::new);
            if set.len() < n || set.contains(&b) {
                set.insert(b);
                db.insert("r", tuple![a, b]).unwrap();
            }
        }
        let mut s_key = std::collections::BTreeSet::new();
        for (a, b) in s {
            if s_key.insert(a) {
                db.insert("s", tuple![a, b]).unwrap();
            }
        }
        db
    })
}

/// A small pool of random conjunctive queries over the schema.
fn query_pool() -> Vec<bqr_query::ConjunctiveQuery> {
    generate_queries(
        &small_schema(),
        &RandomQueryConfig {
            atoms: 2,
            constant_probability: 0.4,
            constants: (0..4).map(bqr_data::Value::int).collect(),
            head_variables: 1,
            seed: 2024,
        },
        12,
    )
}

/// Plans and result orderings are deterministic under a fixed seed: the
/// same query compiled repeatedly (against fresh caches and evaluators)
/// yields byte-identical plans and identically ordered results, for both
/// acyclic and cyclic pools.
#[test]
fn plans_and_result_orderings_are_deterministic_under_a_fixed_seed() {
    use bqr_query::hom::HomSearch;
    use bqr_workload::random::{
        generate_cyclic_queries, generate_database, CyclicQueryConfig, RandomDatabaseConfig,
    };

    let schema = small_schema();
    let db = generate_database(
        &schema,
        &RandomDatabaseConfig {
            tuples_per_relation: 25,
            domain_size: 5,
            seed: 42,
        },
    );
    let mut pool = query_pool();
    pool.extend(generate_cyclic_queries(
        &schema,
        &CyclicQueryConfig {
            cycle_len: 3,
            extra_atoms: 1,
            seed: 2024,
            ..CyclicQueryConfig::default()
        },
        6,
    ));
    for q in &pool {
        let relations: std::collections::BTreeMap<String, &bqr_data::Relation> = q
            .relation_names()
            .into_iter()
            .map(|n| {
                let rel = db.relation(&n).unwrap();
                (n, rel)
            })
            .collect();
        let reference_plan = {
            let cache = bqr_data::IndexCache::new();
            HomSearch::compile(q.atoms(), &relations, &Default::default(), &cache)
                .unwrap()
                .plan_summary()
                .clone()
        };
        let reference_answers = eval_cq(q, &db, None).unwrap();
        for _ in 0..3 {
            let cache = bqr_data::IndexCache::new();
            let again = HomSearch::compile(q.atoms(), &relations, &Default::default(), &cache)
                .unwrap()
                .plan_summary()
                .clone();
            assert_eq!(again, reference_plan, "plan drifted for {q}");
            assert_eq!(
                eval_cq(q, &db, None).unwrap(),
                reference_answers,
                "result ordering drifted for {q}"
            );
        }
        let mut sorted = reference_answers.clone();
        sorted.sort();
        assert_eq!(sorted, reference_answers, "results are emitted sorted");
    }
}

/// Build a one-view instance whose cached extent is exactly `rows` (with
/// whatever duplicates the generator produced collapsing in the view).
fn view_instance(rows: &[(i64, i64)]) -> (IndexedDatabase, bqr_query::MaterializedViews) {
    let schema = DatabaseSchema::with_relations(&[("e", &["x", "y"])]).unwrap();
    let mut db = Database::empty(schema);
    for &(x, y) in rows {
        db.insert("e", tuple![x, y]).unwrap();
    }
    let mut views = ViewSet::empty();
    views
        .add_cq(
            "V",
            bqr_query::parser::parse_cq("V(x, y) :- e(x, y)").unwrap(),
        )
        .unwrap();
    let cache = views.materialize(&db).unwrap();
    let idb = IndexedDatabase::build(db, AccessSchema::empty()).unwrap();
    (idb, cache)
}

fn cond_pool() -> Vec<Vec<SelectCondition>> {
    vec![
        vec![],
        vec![SelectCondition::ColEqConst(0, bqr_data::Value::int(3))],
        vec![SelectCondition::ColNeConst(1, bqr_data::Value::int(7))],
        vec![SelectCondition::ColEqCol(0, 1)],
        vec![SelectCondition::ColNeCol(0, 1)],
        // Conjunction: the second condition compacts the selection vector.
        vec![
            SelectCondition::ColNeCol(0, 1),
            SelectCondition::ColNeConst(0, bqr_data::Value::int(0)),
        ],
        // Contradiction: an all-fail selection vector in every batch.
        vec![
            SelectCondition::ColEqConst(0, bqr_data::Value::int(1)),
            SelectCondition::ColNeConst(0, bqr_data::Value::int(1)),
        ],
    ]
}

/// An empty extent flows through the whole batch pipeline (one empty morsel,
/// empty selection vectors, nothing to dedup) identically under every
/// `ExecOptions` shape.
#[test]
fn vectorised_pipeline_handles_empty_extents() {
    let (idb, cache) = view_instance(&[]);
    for conds in cond_pool() {
        let plan = Plan::view("V", 2)
            .select(conds)
            .project(vec![1])
            .build()
            .unwrap();
        let expected = reference::execute(&plan, &idb, &cache).unwrap();
        assert!(expected.tuples.is_empty());
        for options in [
            ExecOptions::serial(),
            ExecOptions::parallel(4),
            ExecOptions::parallel_auto(),
        ] {
            let got = execute_with(&plan, &idb, &cache, &options).unwrap();
            assert_eq!(got, expected, "{options:?}");
        }
    }
}

/// A one-row intermediate budget trips mid-batch — after the batch that
/// crossed it, not at the end of the operator — with the same typed error on
/// the serial and morsel-parallel drivers.
#[test]
fn row_budget_trips_mid_batch_on_both_drivers() {
    let rows: Vec<(i64, i64)> = (0..6_000).map(|i| (i % 13, i)).collect();
    let (idb, cache) = view_instance(&rows);
    let plan = Plan::view("V", 2).project(vec![0, 1]).build().unwrap();
    for options in [
        ExecOptions::serial().with_row_budget(1),
        ExecOptions::parallel(4).with_row_budget(1),
        ExecOptions::parallel_auto().with_row_budget(1),
    ] {
        let err = execute_with(&plan, &idb, &cache, &options).unwrap_err();
        assert!(
            matches!(
                err,
                bqr_plan::PlanError::Exec(bqr_plan::ExecError::MemoryBudgetExceeded {
                    budget_rows: 1
                })
            ),
            "{options:?}: {err:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized select → project → dedup pipelines: duplicates land all
    /// over (and straddle) batch and morsel boundaries, selection vectors
    /// range from all-pass to all-fail, and inputs sometimes cross the
    /// parallel threshold — every `ExecOptions` shape must agree with the
    /// tree-walking reference on tuples *and* `FetchStats`.
    #[test]
    fn vectorised_kernels_agree_with_reference_on_random_tables(
        rows in prop::collection::vec((0i64..40, 0i64..40), 0..2_000),
        dense in 0usize..2,
        cidx in 0usize..7,
        keep_col in 0usize..2,
    ) {
        // `dense` repeats the generated rows past the parallel threshold, so
        // morsel-parallel runs see real multi-morsel inputs (and the dedup
        // at the projection root sees duplicates straddling boundaries).
        let mut all = rows;
        if dense == 1 {
            while !all.is_empty() && all.len() < 5_000 {
                let chunk: Vec<(i64, i64)> = all.iter().take(1_000).copied().collect();
                all.extend(chunk);
            }
        }
        let (idb, cache) = view_instance(&all);
        let plan = Plan::view("V", 2)
            .select(cond_pool()[cidx].clone())
            .project(vec![keep_col])
            .build()
            .unwrap();
        let expected = reference::execute(&plan, &idb, &cache).unwrap();
        for options in [
            ExecOptions::serial(),
            ExecOptions::parallel(2),
            ExecOptions::parallel(4),
            ExecOptions::parallel_auto(),
        ] {
            let got = execute_with(&plan, &idb, &cache, &options).unwrap();
            prop_assert_eq!(&got.tuples, &expected.tuples, "{:?}", options);
            prop_assert_eq!(&got.stats, &expected.stats, "{:?}", options);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Q ≡_A ⋃ of its element queries: on every instance satisfying A, the
    /// query and the union of its (minimal) element queries agree.
    #[test]
    fn element_queries_partition_the_query(db in db_strategy(2), qidx in 0usize..12) {
        let access = small_access(2);
        prop_assume!(access.satisfied_by(&db).unwrap());
        let q = query_pool()[qidx].clone();
        let elements = element_queries(&q, &access, &small_schema(), &Budget::generous()).unwrap();
        let original = eval_cq(&q, &db, None).unwrap();
        if elements.is_empty() {
            prop_assert!(original.is_empty(), "unsatisfiable under A means empty on satisfying instances");
        } else {
            let union = UnionQuery::new(elements).unwrap();
            let via_elements = eval_ucq(&union, &db, None).unwrap();
            prop_assert_eq!(original, via_elements);
        }
    }

    /// A-containment is sound: if Q1 ⊑_A Q2 then Q1(D) ⊆ Q2(D) on satisfying
    /// instances; and classical containment implies A-containment.
    #[test]
    fn a_containment_soundness(db in db_strategy(2), i in 0usize..12, j in 0usize..12) {
        let access = small_access(2);
        prop_assume!(access.satisfied_by(&db).unwrap());
        let pool = query_pool();
        let (q1, q2) = (pool[i].clone(), pool[j].clone());
        prop_assume!(q1.arity() == q2.arity());
        let contained = cq_a_contained_in(&q1, &q2, &access, &small_schema(), &Budget::generous()).unwrap();
        if contained {
            let a1 = eval_cq(&q1, &db, None).unwrap();
            let a2: std::collections::BTreeSet<_> = eval_cq(&q2, &db, None).unwrap().into_iter().collect();
            for t in a1 {
                prop_assert!(a2.contains(&t), "{} ⊑_A {} but answer {t} missing", q1, q2);
            }
        }
        if cq_contained_in(&q1, &q2, &small_schema()).unwrap() {
            prop_assert!(contained, "classical containment must imply A-containment");
        }
    }

    /// Bounded-output soundness: when BOP says |Q(D)| ≤ N, no satisfying
    /// instance produces more answers than that.
    #[test]
    fn bounded_output_soundness(db in db_strategy(2), qidx in 0usize..12) {
        let access = small_access(2);
        prop_assume!(access.satisfied_by(&db).unwrap());
        let q = query_pool()[qidx].clone();
        if let bqr_query::bounded_output::OutputBound::Bounded(n) =
            cq_output(&q, &access, &small_schema(), &Budget::generous()).unwrap()
        {
            let answers = eval_cq(&q, &db, None).unwrap();
            prop_assert!(answers.len() <= n, "{}: {} answers > bound {}", q, answers.len(), n);
        }
    }

    /// Topped-query soundness: whenever the checker produces a plan, the plan
    /// computes exactly the query on every satisfying instance, without
    /// scanning base data.
    #[test]
    fn generated_plans_are_exact(db in db_strategy(2), qidx in 0usize..12) {
        let access = small_access(2);
        prop_assume!(access.satisfied_by(&db).unwrap());
        let q = query_pool()[qidx].clone();
        let setting = bqr_core::problem::RewritingSetting::new(
            small_schema(),
            access.clone(),
            ViewSet::empty(),
            200,
        );
        let checker = ToppedChecker::new(&setting);
        let analysis = checker.analyze_cq(&q).unwrap();
        if let (true, Some(plan)) = (analysis.topped, analysis.plan) {
            let idb = IndexedDatabase::build(db.clone(), access).unwrap();
            let out = bqr_plan::execute(&plan, &idb, &bqr_query::MaterializedViews::empty()).unwrap();
            let naive = eval_cq(&q, &db, None).unwrap();
            prop_assert_eq!(out.tuples, naive, "query {}", q);
            prop_assert_eq!(out.stats.scanned_tuples, 0usize);
            if let Some(bound) = analysis.fetch_bound {
                prop_assert!(out.stats.fetched_tuples <= bound,
                    "fetched {} > declared bound {}", out.stats.fetched_tuples, bound);
            }
        }
    }
}
