//! Property-based tests on the core invariants.
//!
//! The deterministic-plan tests at the bottom guard against a failure mode
//! this suite used to be exposed to: with a fixed proptest seed, a plan or
//! result ordering that depended on hash-map iteration order could make the
//! same case pass and fail across runs.  Plans are now a pure function of
//! the query and the snapshot statistics, and every evaluation result is
//! sorted, so a fixed seed pins the whole execution.

use bqr_core::topped::ToppedChecker;
use bqr_data::{tuple, AccessConstraint, AccessSchema, Database, DatabaseSchema, IndexedDatabase};
use bqr_query::aequiv::cq_a_contained_in;
use bqr_query::bounded_output::cq_output;
use bqr_query::containment::cq_contained_in;
use bqr_query::element::element_queries;
use bqr_query::eval::{eval_cq, eval_ucq};
use bqr_query::{Budget, UnionQuery, ViewSet};
use bqr_workload::random::{generate_queries, RandomQueryConfig};
use proptest::prelude::*;

fn small_schema() -> DatabaseSchema {
    DatabaseSchema::with_relations(&[("r", &["a", "b"]), ("s", &["a", "b"])]).unwrap()
}

fn small_access(n: usize) -> AccessSchema {
    AccessSchema::new(vec![
        AccessConstraint::new("r", &["a"], &["b"], n).unwrap(),
        AccessConstraint::new("s", &["a"], &["b"], 1).unwrap(),
    ])
}

/// Generate a small random database over `small_schema` that satisfies the
/// access schema by construction (at most `n` b-values per a-value in r, one
/// in s).
fn db_strategy(n: usize) -> impl Strategy<Value = Database> {
    let r_rows = prop::collection::vec((0i64..4, 0i64..3), 0..12);
    let s_rows = prop::collection::vec((0i64..4, 0i64..4), 0..8);
    (r_rows, s_rows).prop_map(move |(r, s)| {
        let mut db = Database::empty(small_schema());
        let mut per_key = std::collections::BTreeMap::new();
        for (a, b) in r {
            let set = per_key
                .entry(a)
                .or_insert_with(std::collections::BTreeSet::new);
            if set.len() < n || set.contains(&b) {
                set.insert(b);
                db.insert("r", tuple![a, b]).unwrap();
            }
        }
        let mut s_key = std::collections::BTreeSet::new();
        for (a, b) in s {
            if s_key.insert(a) {
                db.insert("s", tuple![a, b]).unwrap();
            }
        }
        db
    })
}

/// A small pool of random conjunctive queries over the schema.
fn query_pool() -> Vec<bqr_query::ConjunctiveQuery> {
    generate_queries(
        &small_schema(),
        &RandomQueryConfig {
            atoms: 2,
            constant_probability: 0.4,
            constants: (0..4).map(bqr_data::Value::int).collect(),
            head_variables: 1,
            seed: 2024,
        },
        12,
    )
}

/// Plans and result orderings are deterministic under a fixed seed: the
/// same query compiled repeatedly (against fresh caches and evaluators)
/// yields byte-identical plans and identically ordered results, for both
/// acyclic and cyclic pools.
#[test]
fn plans_and_result_orderings_are_deterministic_under_a_fixed_seed() {
    use bqr_query::hom::HomSearch;
    use bqr_workload::random::{
        generate_cyclic_queries, generate_database, CyclicQueryConfig, RandomDatabaseConfig,
    };

    let schema = small_schema();
    let db = generate_database(
        &schema,
        &RandomDatabaseConfig {
            tuples_per_relation: 25,
            domain_size: 5,
            seed: 42,
        },
    );
    let mut pool = query_pool();
    pool.extend(generate_cyclic_queries(
        &schema,
        &CyclicQueryConfig {
            cycle_len: 3,
            extra_atoms: 1,
            seed: 2024,
            ..CyclicQueryConfig::default()
        },
        6,
    ));
    for q in &pool {
        let relations: std::collections::BTreeMap<String, &bqr_data::Relation> = q
            .relation_names()
            .into_iter()
            .map(|n| {
                let rel = db.relation(&n).unwrap();
                (n, rel)
            })
            .collect();
        let reference_plan = {
            let cache = bqr_data::IndexCache::new();
            HomSearch::compile(q.atoms(), &relations, &Default::default(), &cache)
                .unwrap()
                .plan_summary()
                .clone()
        };
        let reference_answers = eval_cq(q, &db, None).unwrap();
        for _ in 0..3 {
            let cache = bqr_data::IndexCache::new();
            let again = HomSearch::compile(q.atoms(), &relations, &Default::default(), &cache)
                .unwrap()
                .plan_summary()
                .clone();
            assert_eq!(again, reference_plan, "plan drifted for {q}");
            assert_eq!(
                eval_cq(q, &db, None).unwrap(),
                reference_answers,
                "result ordering drifted for {q}"
            );
        }
        let mut sorted = reference_answers.clone();
        sorted.sort();
        assert_eq!(sorted, reference_answers, "results are emitted sorted");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Q ≡_A ⋃ of its element queries: on every instance satisfying A, the
    /// query and the union of its (minimal) element queries agree.
    #[test]
    fn element_queries_partition_the_query(db in db_strategy(2), qidx in 0usize..12) {
        let access = small_access(2);
        prop_assume!(access.satisfied_by(&db).unwrap());
        let q = query_pool()[qidx].clone();
        let elements = element_queries(&q, &access, &small_schema(), &Budget::generous()).unwrap();
        let original = eval_cq(&q, &db, None).unwrap();
        if elements.is_empty() {
            prop_assert!(original.is_empty(), "unsatisfiable under A means empty on satisfying instances");
        } else {
            let union = UnionQuery::new(elements).unwrap();
            let via_elements = eval_ucq(&union, &db, None).unwrap();
            prop_assert_eq!(original, via_elements);
        }
    }

    /// A-containment is sound: if Q1 ⊑_A Q2 then Q1(D) ⊆ Q2(D) on satisfying
    /// instances; and classical containment implies A-containment.
    #[test]
    fn a_containment_soundness(db in db_strategy(2), i in 0usize..12, j in 0usize..12) {
        let access = small_access(2);
        prop_assume!(access.satisfied_by(&db).unwrap());
        let pool = query_pool();
        let (q1, q2) = (pool[i].clone(), pool[j].clone());
        prop_assume!(q1.arity() == q2.arity());
        let contained = cq_a_contained_in(&q1, &q2, &access, &small_schema(), &Budget::generous()).unwrap();
        if contained {
            let a1 = eval_cq(&q1, &db, None).unwrap();
            let a2: std::collections::BTreeSet<_> = eval_cq(&q2, &db, None).unwrap().into_iter().collect();
            for t in a1 {
                prop_assert!(a2.contains(&t), "{} ⊑_A {} but answer {t} missing", q1, q2);
            }
        }
        if cq_contained_in(&q1, &q2, &small_schema()).unwrap() {
            prop_assert!(contained, "classical containment must imply A-containment");
        }
    }

    /// Bounded-output soundness: when BOP says |Q(D)| ≤ N, no satisfying
    /// instance produces more answers than that.
    #[test]
    fn bounded_output_soundness(db in db_strategy(2), qidx in 0usize..12) {
        let access = small_access(2);
        prop_assume!(access.satisfied_by(&db).unwrap());
        let q = query_pool()[qidx].clone();
        if let bqr_query::bounded_output::OutputBound::Bounded(n) =
            cq_output(&q, &access, &small_schema(), &Budget::generous()).unwrap()
        {
            let answers = eval_cq(&q, &db, None).unwrap();
            prop_assert!(answers.len() <= n, "{}: {} answers > bound {}", q, answers.len(), n);
        }
    }

    /// Topped-query soundness: whenever the checker produces a plan, the plan
    /// computes exactly the query on every satisfying instance, without
    /// scanning base data.
    #[test]
    fn generated_plans_are_exact(db in db_strategy(2), qidx in 0usize..12) {
        let access = small_access(2);
        prop_assume!(access.satisfied_by(&db).unwrap());
        let q = query_pool()[qidx].clone();
        let setting = bqr_core::problem::RewritingSetting::new(
            small_schema(),
            access.clone(),
            ViewSet::empty(),
            200,
        );
        let checker = ToppedChecker::new(&setting);
        let analysis = checker.analyze_cq(&q).unwrap();
        if let (true, Some(plan)) = (analysis.topped, analysis.plan) {
            let idb = IndexedDatabase::build(db.clone(), access).unwrap();
            let out = bqr_plan::execute(&plan, &idb, &bqr_query::MaterializedViews::empty()).unwrap();
            let naive = eval_cq(&q, &db, None).unwrap();
            prop_assert_eq!(out.tuples, naive, "query {}", q);
            prop_assert_eq!(out.stats.scanned_tuples, 0usize);
            if let Some(bound) = analysis.fetch_bound {
                prop_assert!(out.stats.fetched_tuples <= bound,
                    "fetched {} > declared bound {}", out.stats.fetched_tuples, bound);
            }
        }
    }
}
