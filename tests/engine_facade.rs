//! Differential and concurrency tests for the `bqr::Engine` facade.
//!
//! * `engine_agrees_with_the_low_level_stack_on_randomized_settings` holds
//!   the facade **bit-identical** (answer tuples *and* `FetchStats`) to the
//!   hand-threaded low-level stack (`RewritingSetting` → `ToppedChecker` →
//!   `execute_with`) on ≥ 100 randomized settings — random chain queries,
//!   view atoms, constants, instances, serial and sharded-parallel options,
//!   and a post-mutation re-comparison.
//! * `pinned_sessions_never_observe_concurrent_mutations` races writer and
//!   reader threads and asserts that a pinned session's reads are
//!   bit-for-bit stable across a mutation storm.

use bqr::core::{RewritingSetting, ToppedChecker};
use bqr::data::{tuple, AccessConstraint, AccessSchema, Database, DatabaseSchema, IndexedDatabase};
use bqr::plan::ExecOptions;
use bqr::query::parser::parse_cq;
use bqr::query::{ConjunctiveQuery, ViewSet};
use bqr::{Engine, Error};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const RELATIONS: [&str; 3] = ["e0", "e1", "e2"];
const VIEW_BOUND: usize = 64;

fn chain_schema() -> DatabaseSchema {
    DatabaseSchema::with_relations(&[
        ("e0", &["a", "b"]),
        ("e1", &["a", "b"]),
        ("e2", &["a", "b"]),
    ])
    .unwrap()
}

fn chain_access(rng: &mut StdRng) -> AccessSchema {
    AccessSchema::new(
        RELATIONS
            .iter()
            .map(|r| AccessConstraint::new(*r, &["a"], &["b"], rng.gen_range(2..6usize)).unwrap())
            .collect(),
    )
}

fn chain_views() -> ViewSet {
    let mut views = ViewSet::empty();
    views
        .add_cq("V", parse_cq("V(x, y) :- e0(x, y)").unwrap())
        .unwrap();
    views
}

fn random_instance(rng: &mut StdRng, domain: i64) -> Database {
    let mut db = Database::empty(chain_schema());
    for r in RELATIONS {
        for _ in 0..rng.gen_range(8..30usize) {
            db.insert(
                r,
                tuple![rng.gen_range(0..domain), rng.gen_range(0..domain)],
            )
            .unwrap();
        }
    }
    db
}

/// A random topped chain query: starts from a constant, each step either
/// fetches a base relation through its `a → b` constraint or joins the
/// cached view `V` (whose output bound is annotated), optionally ending in a
/// constant filter; the head projects the frontier (and sometimes an
/// intermediate) variable.
fn random_chain_query(rng: &mut StdRng, domain: i64) -> ConjunctiveQuery {
    let len = rng.gen_range(1..4usize);
    let start = rng.gen_range(0..domain);
    let mut atoms = Vec::new();
    for step in 0..len {
        let src = if step == 0 {
            start.to_string()
        } else {
            format!("x{step}")
        };
        let dst = format!("x{}", step + 1);
        if rng.gen_bool(0.25) {
            atoms.push(format!("V({src}, {dst})"));
        } else {
            let rel = RELATIONS[rng.gen_range(0..RELATIONS.len())];
            atoms.push(format!("{rel}({src}, {dst})"));
        }
    }
    let head = if len >= 2 && rng.gen_bool(0.3) {
        format!("Q(x1, x{len})")
    } else {
        format!("Q(x{len})")
    };
    parse_cq(&format!("{head} :- {}", atoms.join(", "))).unwrap()
}

#[test]
fn engine_agrees_with_the_low_level_stack_on_randomized_settings() {
    let mut rng = StdRng::seed_from_u64(0xb9_e2_26);
    let mut settings = 0usize;
    let mut executed = 0usize;
    while settings < 110 {
        settings += 1;
        let domain = rng.gen_range(4..10i64);
        let access = chain_access(&mut rng);
        let db = random_instance(&mut rng, domain);

        // The hand-threaded low-level stack.
        let setting = RewritingSetting::new(chain_schema(), access.clone(), chain_views(), 64);
        let mut oracle = bqr::core::BoundedOutputOracle::new(
            setting.schema.clone(),
            setting.access.clone(),
            setting.budget,
        );
        oracle.annotate_view("V", VIEW_BOUND);
        let checker = ToppedChecker::with_oracle(&setting, oracle);

        // The facade, configured identically.
        let engine = Engine::builder()
            .setting(setting.clone())
            .annotate_view_bound("V", VIEW_BOUND)
            .cache_capacity(8)
            .build()
            .unwrap();
        engine.attach(db.clone()).unwrap();

        let query = random_chain_query(&mut rng, domain);
        let low = checker.analyze_cq(&query).unwrap();
        let high = engine.analyze(&query).unwrap();
        assert_eq!(
            low.topped,
            high.bounded(),
            "decisions diverged on {query} ({:?} vs {:?})",
            low.reason,
            high.reason()
        );
        assert_eq!(low.plan_size, high.plan_size(), "plan size on {query}");
        assert_eq!(low.fetch_bound, high.fetch_bound(), "|Dξ| bound on {query}");
        if !low.topped {
            assert!(matches!(
                engine.prepare("q", &query),
                Err(Error::NoRewriting { .. })
            ));
            continue;
        }

        // Low level: materialise, index, execute the constructed plan.
        let views = setting.views.materialize(&db).unwrap();
        let idb = IndexedDatabase::build(db.clone(), access.clone()).unwrap();
        let plan = low.plan.clone().unwrap();

        engine.prepare("q", &query).unwrap();
        let session = engine.session();
        for options in [
            ExecOptions::serial(),
            ExecOptions::parallel(3),
            ExecOptions::parallel_auto(),
        ] {
            let expected = bqr::plan::execute_with(&plan, &idb, &views, &options).unwrap();
            let got = session.execute_with("q", &options).unwrap();
            assert_eq!(got, expected, "answers/stats diverged on {query}");
            executed += 1;
        }
        // Ad-hoc (unnamed) execution takes the same path.
        assert_eq!(
            session.query(&query).unwrap().tuples,
            bqr::plan::execute_with(&plan, &idb, &views, &ExecOptions::serial())
                .unwrap()
                .tuples
        );

        // A mutation: both stacks rebuilt, answers must still be identical
        // (the facade's rebuild is a cache invalidation, never a stale hit).
        if settings.is_multiple_of(3) {
            let rel = RELATIONS[rng.gen_range(0..RELATIONS.len())];
            let t = tuple![rng.gen_range(0..domain), rng.gen_range(0..domain)];
            engine.mutate(|db| db.insert(rel, t.clone())).unwrap();
            let db2 = engine.database();
            let views2 = setting.views.materialize(&db2).unwrap();
            let idb2 = IndexedDatabase::build(db2, access).unwrap();
            let expected =
                bqr::plan::execute_with(&plan, &idb2, &views2, &ExecOptions::serial()).unwrap();
            let fresh = engine.session();
            assert_eq!(
                fresh.execute("q").unwrap(),
                expected,
                "post-mutation divergence on {query}"
            );
            // The pre-mutation session still serves the pre-mutation answer.
            let old = bqr::plan::execute_with(&plan, &idb, &views, &ExecOptions::serial()).unwrap();
            assert_eq!(session.execute("q").unwrap(), old);
            executed += 2;
        }

        let stats = engine.cache_stats();
        assert_eq!(stats.lookups, stats.hits + stats.misses, "{stats:?}");
    }
    assert!(settings >= 100, "at least 100 randomized settings");
    assert!(executed >= 120, "a healthy share had executable rewritings");
}

/// A pinned session must never observe a concurrent mutation mid-session:
/// readers pin a version, execute the statement repeatedly while a writer
/// storms mutations, and every repeat must be bit-identical to the first
/// (tuples and stats), with the pinned epoch vector never moving.
#[test]
fn pinned_sessions_never_observe_concurrent_mutations() {
    let schema = DatabaseSchema::with_relations(&[("r", &["a", "b"])]).unwrap();
    let engine = Engine::builder()
        .schema(schema.clone())
        .access(AccessSchema::new(vec![AccessConstraint::new(
            "r",
            &["a"],
            &["b"],
            64,
        )
        .unwrap()]))
        .bound(8)
        .cache_capacity(16)
        .build()
        .unwrap();
    let mut db = Database::empty(schema);
    db.insert("r", tuple![1, 0]).unwrap();
    engine.attach(db).unwrap();
    engine.prepare("fan_out", "Q(y) :- r(1, y)").unwrap();

    const WRITES: i64 = 40;
    const READERS: usize = 3;
    let barrier = std::sync::Barrier::new(READERS + 1);
    std::thread::scope(|scope| {
        let engine = &engine;
        let barrier = &barrier;
        scope.spawn(move || {
            barrier.wait();
            for k in 1..=WRITES {
                engine.mutate(|db| db.insert("r", tuple![1, k])).unwrap();
                std::thread::yield_now();
            }
        });
        for _ in 0..READERS {
            scope.spawn(move || {
                barrier.wait();
                for _ in 0..30 {
                    let session = engine.session();
                    let pinned_epochs = session.epochs();
                    let first = session.execute("fan_out").unwrap();
                    // The pinned answer is internally consistent: exactly the
                    // r(1, ·) tuples of the pinned snapshot.
                    let expected: Vec<_> = session
                        .database()
                        .relation("r")
                        .unwrap()
                        .iter()
                        .filter(|t| t[0] == bqr::data::Value::int(1))
                        .map(|t| tuple![t[1].clone()])
                        .collect();
                    assert_eq!(first.tuples.len(), expected.len());
                    for repeat in 0..5 {
                        let again = session.execute("fan_out").unwrap();
                        assert_eq!(
                            again, first,
                            "repeat {repeat} observed a concurrent mutation"
                        );
                        assert_eq!(session.epochs(), pinned_epochs, "the pin moved");
                    }
                }
            });
        }
    });

    // Quiesced: a fresh session sees every write, and the cache counters
    // reconcile exactly despite the storm.
    let final_out = engine.session().execute("fan_out").unwrap();
    assert_eq!(final_out.tuples.len(), 1 + WRITES as usize);
    let stats = engine.cache_stats();
    assert_eq!(stats.lookups, stats.hits + stats.misses, "{stats:?}");

    // Deterministic invalidation epilogue (thread interleaving above is
    // best-effort): pin a session, mutate, and serve the new version — the
    // fresh-epoch insert must sweep exactly the superseded entry while the
    // pinned session keeps its answer.
    let pinned = engine.session();
    let before = pinned.execute("fan_out").unwrap();
    engine
        .mutate(|db| db.insert("r", tuple![1, WRITES + 1]))
        .unwrap();
    let invalidations_before = engine.cache_stats().invalidations;
    let after = engine.session().execute("fan_out").unwrap();
    assert_eq!(after.tuples.len(), before.tuples.len() + 1);
    assert!(
        engine.cache_stats().invalidations > invalidations_before,
        "the superseded entry was swept"
    );
    assert_eq!(pinned.execute("fan_out").unwrap(), before, "still pinned");
}

/// `EngineBuilder::parallel_auto` makes auto-sized morsel parallelism the
/// engine default while keeping any guard limits already set — and the
/// answers stay identical to a serial engine's.
#[test]
fn builder_parallel_auto_sets_the_default_options() {
    let schema = DatabaseSchema::with_relations(&[("r", &["a", "b"])]).unwrap();
    let access = AccessSchema::new(vec![AccessConstraint::new("r", &["a"], &["b"], 64).unwrap()]);
    let build = |auto: bool| {
        let b = Engine::builder()
            .schema(schema.clone())
            .access(access.clone())
            .bound(8)
            .guard_limits(bqr::plan::GuardLimits {
                deadline_ms: Some(60_000),
                ..Default::default()
            });
        let b = if auto { b.parallel_auto() } else { b };
        b.build().unwrap()
    };
    let engine = build(true);
    let opts = engine.exec_options();
    assert!(opts.parallel && opts.auto, "{opts:?}");
    assert_eq!(
        opts.limits.deadline_ms,
        Some(60_000),
        "guard limits survive the switch"
    );

    let serial = build(false);
    let mut db = Database::empty(schema.clone());
    for i in 0..200i64 {
        db.insert("r", tuple![i % 5, i]).unwrap();
    }
    engine.attach(db.clone()).unwrap();
    serial.attach(db).unwrap();
    for e in [&engine, &serial] {
        e.prepare("q", "Q(y) :- r(1, y)").unwrap();
    }
    assert_eq!(
        engine.session().execute("q").unwrap(),
        serial.session().execute("q").unwrap(),
        "auto-parallel default changed an answer"
    );
}
