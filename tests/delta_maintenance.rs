//! Randomized differential harness for delta-driven mutation (PR 7).
//!
//! Two engines over the same setting — one publishing versions via
//! semi-naive delta maintenance ([`MaintenanceMode::Delta`], the default),
//! one rebuilding every version from scratch ([`MaintenanceMode::Rebuild`],
//! the pre-delta behaviour) — are driven through hundreds of randomized
//! mutation sequences: single inserts, deletions of live tuples, no-op
//! writes, do-undo pairs, multi-relation closures, failing closures, and
//! wholesale relation replacement (the `Unknown`-delta fallback).  After
//! every mutation the two must agree **bit-identically**: database
//! contents, every materialised view extent, and the served answers *and*
//! `FetchStats` of a prepared statement.
//!
//! On top of the cross-engine agreement, the delta engine must uphold the
//! epoch contract: any relation or view extent whose *contents* a mutation
//! left unchanged keeps its epoch (so epoch-keyed pipeline caches are
//! invalidated only by genuine changes), and a net no-op mutation publishes
//! nothing at all.

use bqr::data::{tuple, DataError, Database, Tuple};
use bqr::query::parser::{parse_cq, parse_ucq};
use bqr::query::ViewSet;
use bqr::workload::movies;
use bqr::{Engine, MaintenanceMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const Q_XI: &str = "Q(mid) :- movie(mid, ym, 'Universal', '2014'), V1(mid), rating(mid, 5)";

fn views() -> ViewSet {
    let mut v = movies::views(); // V1: person ⋈ movie ⋈ like (NASA fans)
    v.add_cq("VR", parse_cq("VR(m, r) :- rating(m, r)").unwrap())
        .unwrap();
    v.add_ucq(
        "VU",
        parse_ucq("VU(m) :- rating(m, 5); VU(m) :- rating(m, 4)").unwrap(),
    )
    .unwrap();
    // Overlapping disjuncts over *different* relations: a movie rated 5 that
    // someone also likes is derivable by both, so deleting one derivation
    // must leave the union tuple in place (per-disjunct maintenance).
    v.add_ucq(
        "VO",
        parse_ucq("VO(m) :- rating(m, 5); VO(m) :- like(p, m, 'movie')").unwrap(),
    )
    .unwrap();
    v
}

fn engine(mode: MaintenanceMode) -> Engine {
    let setting = bqr::core::RewritingSetting::new(
        movies::schema(),
        movies::access_schema(100),
        views(),
        100,
    );
    let engine = Engine::builder()
        .setting(setting)
        .cache_capacity(32)
        .maintenance(mode)
        .build()
        .unwrap();
    engine.prepare("qxi", Q_XI).unwrap();
    engine
}

const RELATIONS: [&str; 4] = ["person", "movie", "rating", "like"];

/// A random tuple for `relation`, drawn from deliberately small domains so
/// inserts collide with existing tuples and deletions hit join partners.
fn random_tuple(rng: &mut StdRng, relation: &str) -> Tuple {
    match relation {
        "person" => {
            let pid = rng.gen_range(1..9i64);
            let aff = if rng.gen_bool(0.6) { "NASA" } else { "ESA" };
            tuple![pid, format!("p{pid}"), aff]
        }
        "movie" => {
            let mid = rng.gen_range(10..18i64);
            let studio = ["Universal", "WB", "MGM"][rng.gen_range(0..3usize)];
            let release = if rng.gen_bool(0.5) { "2014" } else { "2013" };
            tuple![mid, format!("m{mid}"), studio, release]
        }
        "rating" => tuple![rng.gen_range(10..18i64), rng.gen_range(1..6i64)],
        "like" => {
            let ty = if rng.gen_bool(0.8) { "movie" } else { "page" };
            tuple![rng.gen_range(1..9i64), rng.gen_range(10..18i64), ty]
        }
        other => panic!("unknown relation {other}"),
    }
}

/// A tuple currently present in `relation` (or a random one if empty).
fn present_tuple(rng: &mut StdRng, db: &Database, relation: &str) -> Tuple {
    let rel = db.relation(relation).unwrap();
    if rel.is_empty() {
        return random_tuple(rng, relation);
    }
    let idx = rng.gen_range(0..rel.len());
    rel.iter().nth(idx).unwrap().clone()
}

/// One randomized mutation step, applied identically to both engines.
/// Returns whether the closure was expected to fail.
fn mutate_both(rng: &mut StdRng, delta: &Engine, rebuild: &Engine) {
    let kind = rng.gen_range(0..10u64);
    let current = delta.database();
    // Build the op script once, replay it on both engines.
    let mut script: Vec<(u8, &'static str, Tuple)> = Vec::new();
    let mut fails = false;
    match kind {
        // Single random insert (possibly a duplicate → no-op).
        0..=2 => {
            let rel = RELATIONS[rng.gen_range(0..RELATIONS.len())];
            script.push((0, rel, random_tuple(rng, rel)));
        }
        // Deletion of a live tuple.
        3..=4 => {
            let rel = RELATIONS[rng.gen_range(0..RELATIONS.len())];
            script.push((1, rel, present_tuple(rng, &current, rel)));
        }
        // Removing an absent tuple / re-inserting a present one: no-ops.
        5 => {
            let rel = RELATIONS[rng.gen_range(0..RELATIONS.len())];
            script.push((1, rel, random_tuple(rng, rel)));
            let rel = RELATIONS[rng.gen_range(0..RELATIONS.len())];
            script.push((0, rel, present_tuple(rng, &current, rel)));
        }
        // Do-undo pair plus an unrelated genuine write.
        6 => {
            let t = random_tuple(rng, "rating");
            if !current.relation("rating").unwrap().contains(&t) {
                script.push((0, "rating", t.clone()));
                script.push((1, "rating", t));
            }
            script.push((0, "like", random_tuple(rng, "like")));
        }
        // Multi-relation closure: several inserts and deletions at once.
        7 => {
            for _ in 0..rng.gen_range(2..5usize) {
                let rel = RELATIONS[rng.gen_range(0..RELATIONS.len())];
                if rng.gen_bool(0.6) {
                    script.push((0, rel, random_tuple(rng, rel)));
                } else {
                    script.push((1, rel, present_tuple(rng, &current, rel)));
                }
            }
        }
        // Wholesale replacement → Unknown delta → per-view/index fallback.
        8 => {
            script.push((2, "rating", random_tuple(rng, "rating")));
        }
        // Failing closure after a write: must publish nothing on either side.
        _ => {
            script.push((0, "rating", random_tuple(rng, "rating")));
            script.push((3, "rating", tuple![0, 0]));
            fails = true;
        }
    }

    for engine in [delta, rebuild] {
        let script = script.clone();
        let out = engine.mutate(move |db| {
            for (op, rel, t) in &script {
                match op {
                    0 => {
                        db.insert(rel, t.clone())?;
                    }
                    1 => {
                        db.remove(rel, t)?;
                    }
                    2 => {
                        // Rebuild the relation from scratch through
                        // `relation_mut` assignment: tracking is lost.
                        let schema = db.relation(rel).unwrap().schema().clone();
                        let mut tuples: Vec<Tuple> =
                            db.relation(rel).unwrap().iter().cloned().collect();
                        tuples.push(t.clone());
                        *db.relation_mut(rel)? = bqr::data::Relation::from_tuples(schema, tuples)?;
                    }
                    _ => return Err(DataError::UnknownRelation("injected".into())),
                }
            }
            Ok(())
        });
        assert_eq!(out.is_err(), fails, "unexpected mutate outcome: {out:?}");
    }
}

/// Every relation or extent whose contents did not change must keep its
/// epoch on the delta engine.
fn check_epoch_contract(
    before_db: &Database,
    before_views: &[(String, bqr::data::Relation)],
    engine: &Engine,
) {
    let session = engine.session();
    for rel in session.database().relations() {
        let prev = before_db.relation(rel.name()).unwrap();
        if prev == rel {
            assert_eq!(
                prev.epoch(),
                rel.epoch(),
                "content-unchanged relation `{}` was re-stamped",
                rel.name()
            );
        } else {
            assert_ne!(prev.epoch(), rel.epoch());
        }
    }
    for (name, prev) in before_views {
        let now = session.views().extent(name).unwrap();
        if prev == now {
            assert_eq!(
                prev.epoch(),
                now.epoch(),
                "content-unchanged extent `{name}` was re-stamped"
            );
        } else {
            assert_ne!(prev.epoch(), now.epoch());
        }
    }
}

fn check_agreement(delta: &Engine, rebuild: &Engine) {
    let a = delta.session();
    let b = rebuild.session();
    assert_eq!(a.database(), b.database(), "database contents diverged");
    for name in a.views().names() {
        assert_eq!(
            a.views().extent(name),
            b.views().extent(name),
            "view extent `{name}` diverged"
        );
    }
    assert_eq!(
        a.execute("qxi").unwrap(),
        b.execute("qxi").unwrap(),
        "served tuples / FetchStats diverged"
    );
}

#[test]
fn randomized_mutation_sequences_agree_with_full_rebuild() {
    const SEQUENCES: u64 = 220;
    const MUTATIONS_PER_SEQUENCE: usize = 4;

    let delta = engine(MaintenanceMode::Delta);
    let rebuild = engine(MaintenanceMode::Rebuild);

    for seed in 0..SEQUENCES {
        let mut rng = StdRng::seed_from_u64(seed);
        // Fresh random starting instance for the sequence, on both engines.
        let mut db = Database::empty(movies::schema());
        for _ in 0..rng.gen_range(10..30usize) {
            let rel = RELATIONS[rng.gen_range(0..RELATIONS.len())];
            db.insert(rel, random_tuple(&mut rng, rel)).unwrap();
        }
        delta.attach(db.clone()).unwrap();
        rebuild.attach(db).unwrap();
        check_agreement(&delta, &rebuild);

        for _ in 0..MUTATIONS_PER_SEQUENCE {
            let before_db = delta.database();
            let before_views: Vec<_> = {
                let s = delta.session();
                s.views()
                    .names()
                    .map(|n| (n.to_string(), s.views().extent(n).unwrap().clone()))
                    .collect()
            };
            mutate_both(&mut rng, &delta, &rebuild);
            check_agreement(&delta, &rebuild);
            check_epoch_contract(&before_db, &before_views, &delta);
        }
    }
}

/// The paper's Example 1.1 trajectory, replayed step by step with deletions
/// that strip a view tuple of one derivation but not the other.
#[test]
fn deterministic_trajectory_with_shared_derivations() {
    let delta = engine(MaintenanceMode::Delta);
    let rebuild = engine(MaintenanceMode::Rebuild);
    let mut db = Database::empty(movies::schema());
    db.insert("person", tuple![1, "Ann", "NASA"]).unwrap();
    db.insert("person", tuple![2, "Bob", "NASA"]).unwrap();
    db.insert("movie", tuple![10, "Lucy", "Universal", "2014"])
        .unwrap();
    db.insert("rating", tuple![10, 5]).unwrap();
    db.insert("like", tuple![1, 10, "movie"]).unwrap();
    db.insert("like", tuple![2, 10, "movie"]).unwrap();
    delta.attach(db.clone()).unwrap();
    rebuild.attach(db).unwrap();

    type Step = Box<dyn Fn(&mut Database) -> bqr::data::Result<()>>;
    let steps: Vec<Step> = vec![
        // Drop one of the two derivations of V1(10): extent must survive.
        Box::new(|db| db.remove("like", &tuple![1, 10, "movie"]).map(drop)),
        // Drop the last derivation: V1(10) must disappear.
        Box::new(|db| db.remove("like", &tuple![2, 10, "movie"]).map(drop)),
        // Bring it back through a different fan.
        Box::new(|db| db.insert("like", tuple![2, 10, "movie"]).map(drop)),
        // Kill it from the person side instead.
        Box::new(|db| db.remove("person", &tuple![2, "Bob", "NASA"]).map(drop)),
    ];
    for (i, step) in steps.iter().enumerate() {
        delta.mutate(|db| step(db)).unwrap();
        rebuild.mutate(|db| step(db)).unwrap();
        check_agreement(&delta, &rebuild);
        let has_v1 = delta
            .session()
            .views()
            .extent("V1")
            .unwrap()
            .contains(&tuple![10]);
        assert_eq!(has_v1, i == 0 || i == 2, "step {i}");
    }
}

#[test]
fn served_answers_track_deletions_of_answer_tuples() {
    let delta = engine(MaintenanceMode::Delta);
    let rebuild = engine(MaintenanceMode::Rebuild);
    let mut db = Database::empty(movies::schema());
    db.insert("person", tuple![1, "Ann", "NASA"]).unwrap();
    for mid in [10i64, 11, 12] {
        db.insert("movie", tuple![mid, format!("m{mid}"), "Universal", "2014"])
            .unwrap();
        db.insert("rating", tuple![mid, 5]).unwrap();
        db.insert("like", tuple![1, mid, "movie"]).unwrap();
    }
    delta.attach(db.clone()).unwrap();
    rebuild.attach(db).unwrap();
    assert_eq!(
        delta.execute("qxi").unwrap().tuples,
        vec![tuple![10], tuple![11], tuple![12]]
    );

    for engine in [&delta, &rebuild] {
        engine
            .mutate(|db| {
                db.remove("rating", &tuple![11, 5])?;
                db.remove("like", &tuple![1, 12, "movie"]).map(drop)
            })
            .unwrap();
    }
    check_agreement(&delta, &rebuild);
    assert_eq!(delta.execute("qxi").unwrap().tuples, vec![tuple![10]]);
}

/// A UCQ union tuple derivable by two disjuncts must survive the deletion
/// of one derivation — and because the union's contents did not change, the
/// extent must keep its epoch (no spurious cache invalidation).
#[test]
fn ucq_tuple_survives_losing_one_of_two_disjunct_derivations() {
    let delta = engine(MaintenanceMode::Delta);
    let rebuild = engine(MaintenanceMode::Rebuild);
    let mut db = Database::empty(movies::schema());
    db.insert("movie", tuple![10, "Lucy", "Universal", "2014"])
        .unwrap();
    db.insert("rating", tuple![10, 5]).unwrap();
    db.insert("like", tuple![1, 10, "movie"]).unwrap();
    delta.attach(db.clone()).unwrap();
    rebuild.attach(db).unwrap();
    assert!(delta
        .session()
        .views()
        .extent("VO")
        .unwrap()
        .contains(&tuple![10]));

    // Drop the `like` derivation: VO(10) still holds via rating(10, 5), the
    // union contents are unchanged, and the extent keeps its epoch.
    let epoch_before = delta.session().views().extent("VO").unwrap().epoch();
    for engine in [&delta, &rebuild] {
        engine
            .mutate(|db| db.remove("like", &tuple![1, 10, "movie"]).map(drop))
            .unwrap();
    }
    check_agreement(&delta, &rebuild);
    let vo = delta.session();
    let vo = vo.views().extent("VO").unwrap();
    assert!(vo.contains(&tuple![10]));
    assert_eq!(
        vo.epoch(),
        epoch_before,
        "content-unchanged VO was re-stamped"
    );

    // Drop the last derivation: VO(10) disappears on both engines.
    for engine in [&delta, &rebuild] {
        engine
            .mutate(|db| db.remove("rating", &tuple![10, 5]).map(drop))
            .unwrap();
    }
    check_agreement(&delta, &rebuild);
    assert!(!delta
        .session()
        .views()
        .extent("VO")
        .unwrap()
        .contains(&tuple![10]));
}

/// Differential check of in-place snapshot patching: after every exact-delta
/// mutation, the registered [`InternedSnapshot`] of every relation must
/// agree with a from-scratch recomputation — same rows (as a set), same
/// per-position distinct counts — and keep the *first-seen* row order:
/// surviving predecessor rows first (in predecessor order), insertions
/// appended.  Exercises the removal path heavily.
#[test]
fn patched_snapshots_match_from_scratch_recomputation() {
    use bqr::data::{snapshot_of, RelationStats};

    let engine = engine(MaintenanceMode::Delta);
    for seed in 1000..1060u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = Database::empty(movies::schema());
        for _ in 0..rng.gen_range(10..30usize) {
            let rel = RELATIONS[rng.gen_range(0..RELATIONS.len())];
            db.insert(rel, random_tuple(&mut rng, rel)).unwrap();
        }
        engine.attach(db).unwrap();
        // One warmup write anchors every relation's snapshot in the indexed
        // database; from here on, exact deltas take the patch path.  The
        // tuple lies outside `random_tuple`'s domain so the insert can never
        // be a (publish-eliding) no-op.
        engine
            .mutate(|db| db.insert("rating", tuple![999, 1]).map(drop))
            .unwrap();

        let order_of = |engine: &Engine| -> Vec<(String, Vec<Tuple>)> {
            let session = engine.session();
            session
                .database()
                .relations()
                .map(|rel| {
                    let snap = snapshot_of(rel);
                    assert_eq!(snap.epoch(), rel.epoch());
                    let rows: Vec<Tuple> = (0..snap.len() as u32)
                        .map(|i| Tuple::new(snap.row(i).iter().map(|id| id.value()).collect()))
                        .collect();
                    // Contents: the snapshot rows are exactly the relation.
                    assert_eq!(rows.len(), rel.len());
                    assert!(rows.iter().all(|t| rel.contains(t)));
                    // Stats: bit-identical to a from-scratch recomputation
                    // over the same rows.
                    assert_eq!(
                        *snap.stats(),
                        RelationStats::of_rows(snap.len(), snap.arity(), snap.id_rows()),
                        "patched stats diverged for `{}`",
                        rel.name()
                    );
                    (rel.name().to_string(), rows)
                })
                .collect()
        };

        let mut before = order_of(&engine);
        for _ in 0..6 {
            // Exact-delta script only: random inserts and live-tuple
            // removals (no wholesale replacement), so every mutation is
            // patchable.
            let current = engine.database();
            let mut script: Vec<(u8, &'static str, Tuple)> = Vec::new();
            for _ in 0..rng.gen_range(1..4usize) {
                let rel = RELATIONS[rng.gen_range(0..RELATIONS.len())];
                if rng.gen_bool(0.5) {
                    script.push((0, rel, random_tuple(&mut rng, rel)));
                } else {
                    script.push((1, rel, present_tuple(&mut rng, &current, rel)));
                }
            }
            engine
                .mutate(move |db| {
                    for (op, rel, t) in &script {
                        match op {
                            0 => {
                                db.insert(rel, t.clone())?;
                            }
                            _ => {
                                db.remove(rel, t)?;
                            }
                        }
                    }
                    Ok(())
                })
                .unwrap();

            let after = order_of(&engine);
            for ((name, prev_rows), (_, new_rows)) in before.iter().zip(&after) {
                // First-seen order: the new snapshot starts with the
                // predecessor's surviving rows, in predecessor order.
                let new_set: std::collections::BTreeSet<&Tuple> = new_rows.iter().collect();
                let survivors: Vec<&Tuple> =
                    prev_rows.iter().filter(|t| new_set.contains(t)).collect();
                assert!(
                    survivors
                        .iter()
                        .zip(new_rows.iter())
                        .all(|(a, b)| **a == *b),
                    "surviving rows of `{name}` were reordered by the patch"
                );
            }
            before = after;
        }
    }
}
